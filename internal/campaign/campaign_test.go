package campaign

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// quickTableIConfig shrinks the campaign for unit tests while keeping
// the protocol's structure.
func quickTableIConfig(seed int64) TableIConfig {
	cfg := DefaultTableIConfig(seed)
	cfg.Injections = 4
	cfg.FlipsPerSize = 2
	cfg.MultiInjections = 6
	cfg.Hold = 20 * time.Second
	cfg.Recover = 7 * time.Second
	return cfg
}

func TestGroupSignals(t *testing.T) {
	if got := groupSignals(GroupRangePlus); len(got) != 3 {
		t.Errorf("Range+ = %v", got)
	}
	if got := groupSignals(GroupRangePlusSet); len(got) != 4 {
		t.Errorf("Range+Set = %v", got)
	}
	if got := groupSignals(GroupAll); len(got) != 9 {
		t.Errorf("All = %v", got)
	}
	if got := groupSignals(sigdb.SigVelocity); len(got) != 1 || got[0] != sigdb.SigVelocity {
		t.Errorf("single = %v", got)
	}
}

func TestTableIStructureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign")
	}
	var progress bytes.Buffer
	cfg := quickTableIConfig(1)
	cfg.Progress = &progress
	table, err := RunTableI(cfg)
	if err != nil {
		t.Fatalf("RunTableI: %v", err)
	}
	if len(table.Rows) != 32 {
		t.Fatalf("table has %d rows, want 32", len(table.Rows))
	}
	for _, row := range table.Rows {
		if len(row.Verdicts) != 7 {
			t.Errorf("row %s %s has %d verdicts, want 7", row.Test, row.Target, len(row.Verdicts))
		}
		if row.Report == nil {
			t.Errorf("row %s %s missing report", row.Test, row.Target)
		}
	}
	if lines := strings.Count(progress.String(), "\n"); lines != 32 {
		t.Errorf("progress wrote %d lines, want 32", lines)
	}
}

func TestTableIVacuityDistinguishesExercisedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated campaign")
	}
	table, err := RunTableI(quickTableIConfig(3))
	if err != nil {
		t.Fatalf("RunTableI: %v", err)
	}
	vacuous, exercised := 0, 0
	for _, row := range table.Rows {
		rr, ok := row.Report.Rule("Rule0")
		if !ok || rr.Verdict != core.Satisfied {
			continue
		}
		if rr.Vacuous() {
			vacuous++
		} else {
			exercised++
		}
	}
	// Rule #0 is satisfied everywhere, but only the tests whose faults
	// trip the watchdog (sustained NaN) actually exercise it; the rest
	// are vacuous passes. Both kinds must appear.
	if vacuous == 0 {
		t.Error("no vacuous Rule0 cells: vacuity detection not working")
	}
	if exercised == 0 {
		t.Error("no exercised Rule0 cells: no test tripped ServiceACC")
	}
	var buf bytes.Buffer
	if err := table.RenderCoverage(&buf); err != nil {
		t.Fatalf("RenderCoverage: %v", err)
	}
	if !strings.Contains(buf.String(), " s") {
		t.Error("coverage rendering contains no vacuous cells")
	}
}

func TestBaselineNoInjectionAllSatisfied(t *testing.T) {
	// The paper: monitoring "indicated a lack of problems (to the
	// degree possible given available data) in non-faulted operation".
	bench, err := hil.New(scenario.Baseline(3, 4*time.Minute))
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	if err := bench.Run(4*time.Minute, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		t.Fatalf("NewStrictMonitor: %v", err)
	}
	rep, err := mon.CheckLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	for _, rr := range rep.Rules {
		if rr.Verdict != core.Satisfied {
			t.Errorf("%s = %v on the non-faulted baseline: %+v",
				rr.Name(), rr.Verdict, rr.Result.Violations)
		}
	}
}

func TestLeadBrakeBaselineAllSatisfied(t *testing.T) {
	// The hardest non-faulted manoeuvre — a 4 m/s² stop to standstill
	// and pull-away — must stay clean on every strict rule.
	bench, err := hil.New(scenario.LeadBrake(9))
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	if err := bench.Run(90*time.Second, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		t.Fatalf("NewStrictMonitor: %v", err)
	}
	rep, err := mon.CheckLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	for _, rr := range rep.Rules {
		if rr.Verdict != core.Satisfied {
			t.Errorf("%s = %v on the emergency-stop baseline: %+v",
				rr.Name(), rr.Verdict, rr.Result.Violations)
		}
	}
	// And it must not be vacuous for the gap rules: the stop genuinely
	// exercises the headway machine.
	if rr, ok := rep.Rule("Rule1"); ok && rr.Result.ActivationSteps == 0 {
		t.Log("note: Rule1 not activated during the stop (headway never dipped below 1s)")
	}
}

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated campaign")
	}
	// The full paper protocol: reduced injection counts make the
	// stochastic shape assertions flaky.
	table, err := RunTableI(DefaultTableIConfig(42))
	if err != nil {
		t.Fatalf("RunTableI: %v", err)
	}
	if len(table.Rows) != 32 {
		t.Fatalf("table has %d rows, want 32", len(table.Rows))
	}

	// Rule #0 column all-S: the feature's own fault handling is
	// consistent everywhere.
	for _, row := range table.Rows {
		if row.Verdicts[0] != core.Satisfied {
			t.Errorf("Rule0 violated in row %s %s", row.Test, row.Target)
		}
	}
	// The four non-critical inputs produce all-S rows.
	benign := []string{sigdb.SigThrotPos, sigdb.SigAccelPedPos, sigdb.SigBrakePedPres, sigdb.SigSelHeadway}
	for _, row := range table.Rows {
		for _, b := range benign {
			if row.Target != b {
				continue
			}
			for i, v := range row.Verdicts {
				if v != core.Violated {
					continue
				}
				t.Errorf("benign row %s %s violated rule %d", row.Test, row.Target, i)
			}
		}
	}
	// Every critical signal's rows contain at least one V overall.
	for _, critical := range []string{sigdb.SigVelocity, sigdb.SigTargetRange, sigdb.SigTargetRelVel, sigdb.SigACCSetSpeed} {
		found := false
		for _, row := range table.Rows {
			if row.Target != critical {
				continue
			}
			for _, v := range row.Verdicts {
				if v == core.Violated {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("critical signal %s has no violations in any test", critical)
		}
	}
	// Multi-target rows find problems too.
	multiViolated := 0
	for _, row := range table.Rows {
		if strings.HasPrefix(row.Test, "m") {
			for _, v := range row.Verdicts {
				if v == core.Violated {
					multiViolated++
					break
				}
			}
		}
	}
	if multiViolated < 4 {
		t.Errorf("only %d of 8 multi-target rows violated anything", multiViolated)
	}
}

func TestTableIRenderAndLookup(t *testing.T) {
	table := PaperTableI()
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAULT INJECTION RESULTS") || !strings.Contains(out, "Velocity") {
		t.Errorf("render output missing content:\n%s", out)
	}
	v, ok := table.Verdict("Random", sigdb.SigVelocity, 1)
	if !ok || v != core.Violated {
		t.Errorf("paper Random/Velocity rule1 = %v,%v", v, ok)
	}
	if _, ok := table.Verdict("Random", sigdb.SigVelocity, 99); ok {
		t.Error("out-of-range rule index accepted")
	}
	if _, ok := table.Verdict("NoSuch", "row", 0); ok {
		t.Error("unknown row accepted")
	}
}

func TestPaperTableIProperties(t *testing.T) {
	table := PaperTableI()
	if len(table.Rows) != 32 {
		t.Fatalf("paper table has %d rows, want 32", len(table.Rows))
	}
	for _, row := range table.Rows {
		if len(row.Verdicts) != 7 {
			t.Errorf("row %s %s has %d verdicts", row.Test, row.Target, len(row.Verdicts))
		}
	}
	// "Six out of the seven rules were detected as violated during
	// testing (all except Rule #0)."
	if got := table.RulesViolatedAnywhere(); got != 6 {
		t.Errorf("paper table rules violated = %d, want 6", got)
	}
}

func TestCompareIdenticalTables(t *testing.T) {
	p := PaperTableI()
	cmp := Compare(p, p)
	if cmp.CellAgreement() != 1 || cmp.RowShapeAgreement() != 1 {
		t.Errorf("self comparison = %+v", cmp)
	}
	if !cmp.Rule0CleanBoth || !cmp.BenignRowsCleanBoth {
		t.Errorf("self comparison flags = %+v", cmp)
	}
	if cmp.Cells != 32*7 {
		t.Errorf("cells = %d, want 224", cmp.Cells)
	}
}

func TestCompareDisjointTables(t *testing.T) {
	got := &TableI{RuleNames: rules.Names()}
	cmp := Compare(got, PaperTableI())
	if cmp.Rows != 0 || cmp.Cells != 0 {
		t.Errorf("disjoint comparison = %+v", cmp)
	}
	if cmp.CellAgreement() != 0 || cmp.RowShapeAgreement() != 0 {
		t.Error("empty comparison rates not zero")
	}
}

func TestRenderComparison(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderComparison(&buf, Compare(PaperTableI(), PaperTableI())); err != nil {
		t.Fatalf("RenderComparison: %v", err)
	}
	if !strings.Contains(buf.String(), "100.0%") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestVehicleLogsReproduceSectionIVA(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated drive cycles")
	}
	a, err := RunVehicleLogs(2024, 3)
	if err != nil {
		t.Fatalf("RunVehicleLogs: %v", err)
	}
	if a.Cycles != 3 || a.Driving != 3*scenario.DriveCycleDuration {
		t.Errorf("analysis meta: %+v", a)
	}
	// Rules #0, #1, #5, #6 were not violated in the vehicle logs.
	for _, name := range []string{"Rule0", "Rule1", "Rule5", "Rule6"} {
		r, ok := a.Rule(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if r.StrictVerdict != core.Satisfied {
			t.Errorf("%s = %v on vehicle logs, want S", name, r.StrictVerdict)
		}
	}
	// Rules #2, #3, #4 had violations, all "reasonable" (triaged as
	// transient or negligible, none real), and the relaxed variants
	// eliminate them.
	violatedSomething := false
	for _, name := range []string{"Rule2", "Rule3", "Rule4"} {
		r, ok := a.Rule(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if r.StrictVerdict == core.Violated {
			violatedSomething = true
		}
		if r.Real != 0 {
			t.Errorf("%s has %d real violations on vehicle logs, want 0", name, r.Real)
		}
		if r.RelaxedVerdict != core.Satisfied {
			t.Errorf("relaxed %s = %v, want S", name, r.RelaxedVerdict)
		}
	}
	if !violatedSomething {
		t.Error("none of rules 2-4 violated: drive cycles not exercising the overly-strict rules")
	}
}

func TestOnlineMatchesOfflineOnInjectionTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated scenario")
	}
	// A trace with real violations from several fault classes.
	duration := 2 * time.Minute
	bench, err := hil.New(scenario.Follow(21, duration))
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
		switch now {
		case 20 * time.Second:
			return b.SetInjection(sigdb.SigVelocity, 5)
		case 40 * time.Second:
			b.ClearAllInjections()
			return b.SetInjection(sigdb.SigTargetRange, 4294967296.000001)
		case 60 * time.Second:
			b.ClearAllInjections()
			return b.SetInjection(sigdb.SigVelocity, math.NaN())
		case 85 * time.Second:
			b.ClearAllInjections()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		t.Fatalf("NewStrictMonitor: %v", err)
	}
	offline, err := mon.CheckLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	if !offline.AnyViolated() {
		t.Fatal("injection trace produced no violations; equivalence test is vacuous")
	}

	om, err := mon.Online(sigdb.Vehicle())
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	got := make(map[string][]core.OnlineEvent)
	collect := func(evs []core.OnlineEvent) {
		for _, e := range evs {
			if e.Kind == speclang.ViolationEnd {
				got[e.Rule] = append(got[e.Rule], e)
			}
		}
	}
	for _, f := range bench.Log().Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		collect(evs)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collect(evs)

	for _, rr := range offline.Rules {
		online := got[rr.Name()]
		if len(online) != len(rr.Result.Violations) {
			t.Fatalf("rule %s: online %d violations, offline %d", rr.Name(), len(online), len(rr.Result.Violations))
		}
		for i, want := range rr.Result.Violations {
			g := online[i]
			if g.Violation.StartStep != want.StartStep || g.Violation.EndStep != want.EndStep {
				t.Fatalf("rule %s violation %d: online %+v, offline %+v", rr.Name(), i, g.Violation, want)
			}
			samePeak := g.Violation.Peak == want.Peak ||
				(math.IsInf(g.Violation.Peak, 1) && math.IsInf(want.Peak, 1))
			if !samePeak || g.Class != rr.Classes[i] {
				t.Fatalf("rule %s violation %d: online peak %v class %v, offline peak %v class %v",
					rr.Name(), i, g.Violation.Peak, g.Class, want.Peak, rr.Classes[i])
			}
		}
	}
}

func TestVehicleAnalysisRender(t *testing.T) {
	a := &VehicleAnalysis{
		Cycles:  1,
		Driving: scenario.DriveCycleDuration,
		Rules: []VehicleRuleSummary{
			{Name: "Rule0", StrictVerdict: core.Satisfied, RelaxedVerdict: core.Satisfied},
		},
	}
	var buf bytes.Buffer
	if err := a.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Rule0") {
		t.Errorf("output: %s", buf.String())
	}
	if _, ok := a.Rule("NoSuch"); ok {
		t.Error("unknown rule found")
	}
}

func TestMultiRateAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	r, err := RunMultiRateAblation(7)
	if err != nil {
		t.Fatalf("RunMultiRateAblation: %v", err)
	}
	// The paper's V.C.1 trap: naive differences miss the sustained
	// increase that update-aware differences catch.
	if r.AwareVerdict != core.Violated {
		t.Error("update-aware semantics missed the Rule4 violation")
	}
	if r.NaiveVerdict != core.Satisfied {
		t.Error("naive semantics unexpectedly caught the violation (trap not reproduced)")
	}
	if r.AwareSteps <= r.NaiveSteps {
		t.Errorf("aware steps %d <= naive steps %d", r.AwareSteps, r.NaiveSteps)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestWarmupAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	r, err := RunWarmupAblation(7)
	if err != nil {
		t.Fatalf("RunWarmupAblation: %v", err)
	}
	if r.Acquisitions == 0 {
		t.Fatal("no target acquisitions in the approach scenarios")
	}
	if r.WithoutWarmup == 0 {
		t.Error("unguarded consistency rule produced no acquisition false alarms")
	}
	if r.WithWarmup != 0 {
		t.Errorf("warm-up gate left %d false alarms", r.WithWarmup)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestTypeCheckAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	r, err := RunTypeCheckAblation(7)
	if err != nil {
		t.Fatalf("RunTypeCheckAblation: %v", err)
	}
	if !r.HILRejected {
		t.Error("HIL type checking did not reject the out-of-range enum")
	}
	if r.HILViolations != 0 {
		t.Errorf("HIL run has %d violations, want 0 (injection was blocked)", r.HILViolations)
	}
	if r.VehicleViolations == 0 {
		t.Error("vehicle run found no violations: the masked hazard was not reproduced")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestIntentAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	r, err := RunIntentAblation(7)
	if err != nil {
		t.Fatalf("RunIntentAblation: %v", err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("sweep has %d points, want 12", len(r.Points))
	}
	// The tradeoff: the most permissive setting has the lowest FNR,
	// the strictest has the lowest FPR.
	first := r.Points[0].Confusion
	last := r.Points[len(r.Points)-1].Confusion
	if first.FalseNegativeRate() >= last.FalseNegativeRate() && last.FN > 0 {
		t.Errorf("no FNR tradeoff: permissive %.3f vs strict %.3f",
			first.FalseNegativeRate(), last.FalseNegativeRate())
	}
	if last.FalsePositiveRate() > first.FalsePositiveRate() {
		t.Errorf("no FPR tradeoff: permissive %.3f vs strict %.3f",
			first.FalsePositiveRate(), last.FalsePositiveRate())
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestTableIJSONRoundTrip(t *testing.T) {
	table := PaperTableI()
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back TableI
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(back.Rows) != len(table.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(table.Rows))
	}
	for i, row := range back.Rows {
		want := table.Rows[i]
		if row.Test != want.Test || row.Target != want.Target {
			t.Fatalf("row %d = %s %s, want %s %s", i, row.Test, row.Target, want.Test, want.Target)
		}
		for j, v := range row.Verdicts {
			if v != want.Verdicts[j] {
				t.Fatalf("row %d verdict %d = %v, want %v", i, j, v, want.Verdicts[j])
			}
		}
	}
	if !strings.Contains(string(data), `"S"`) || !strings.Contains(string(data), `"V"`) {
		t.Error("verdicts not serialized in paper notation")
	}
}

func TestVehicleAnalysisJSON(t *testing.T) {
	a := &VehicleAnalysis{
		Cycles:  2,
		Driving: 2 * scenario.DriveCycleDuration,
		Rules: []VehicleRuleSummary{
			{Name: "Rule0", StrictVerdict: core.Satisfied, RelaxedVerdict: core.Satisfied},
			{Name: "Rule3", StrictVerdict: core.Violated, Violations: 5, Negligible: 5, RelaxedVerdict: core.Satisfied},
		},
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back VehicleAnalysis
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Cycles != 2 || len(back.Rules) != 2 || back.Rules[1].StrictVerdict != core.Violated {
		t.Errorf("round trip = %+v", back)
	}
}

func TestLatencyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	r, err := RunLatencyAblation(7)
	if err != nil {
		t.Fatalf("RunLatencyAblation: %v", err)
	}
	if len(r.Stats) == 0 {
		t.Fatal("no latency stats")
	}
	for _, s := range r.Stats {
		// Every delivery is bounded by the rule's horizon plus one
		// broadcast step (the event is emitted when the next frame
		// closes the decisive grid step).
		bound := s.Horizon + 2*sigdb.FastPeriod
		if s.MaxLatency > bound {
			t.Errorf("%s: max latency %v exceeds horizon+2 steps (%v)", s.Rule, s.MaxLatency, bound)
		}
		if s.Begins == 0 {
			t.Errorf("%s: zero begin events recorded", s.Rule)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Rule4") {
		t.Errorf("latency render missing Rule4:\n%s", buf.String())
	}
}

func TestOnlineMatchesOfflineWithJitterAndSlowFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated scenario")
	}
	// The hardest alignment case: the FSRACC output frame is four
	// times slower than the monitor step AND the slow frames slip by a
	// tick with high probability. Online grid construction must place
	// every frame in exactly the step the offline alignment uses.
	db := sigdb.VehicleSlowOutputs()
	cfg := scenario.Follow(33, 90*time.Second)
	cfg.DB = db
	cfg.JitterProb = 0.3
	bench, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	err = bench.Run(90*time.Second, func(now time.Duration, b *hil.Bench) error {
		if now == 20*time.Second {
			return b.SetInjection(sigdb.SigVelocity, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		t.Fatalf("NewStrictMonitor: %v", err)
	}
	offline, err := mon.CheckLog(bench.Log(), db)
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	if !offline.AnyViolated() {
		t.Fatal("jittered slow-frame trace produced no violations; test is vacuous")
	}
	om, err := mon.Online(db)
	if err != nil {
		t.Fatalf("Online: %v", err)
	}
	got := make(map[string]int)
	gotSteps := make(map[string]int)
	collect := func(evs []core.OnlineEvent) {
		for _, e := range evs {
			if e.Kind == speclang.ViolationEnd {
				got[e.Rule]++
				gotSteps[e.Rule] += e.Violation.Steps()
			}
		}
	}
	for _, f := range bench.Log().Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			t.Fatalf("PushFrame: %v", err)
		}
		collect(evs)
	}
	evs, err := om.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	collect(evs)
	for _, rr := range offline.Rules {
		steps := 0
		for _, v := range rr.Result.Violations {
			steps += v.Steps()
		}
		if got[rr.Name()] != len(rr.Result.Violations) || gotSteps[rr.Name()] != steps {
			t.Errorf("rule %s: online %d violations/%d steps, offline %d/%d",
				rr.Name(), got[rr.Name()], gotSteps[rr.Name()], len(rr.Result.Violations), steps)
		}
	}
}

// TestTableIGolden pins the full seed-42 campaign against a recorded
// golden table: any behavioural drift in the feature, the plant, the
// injectors, the scenario or the monitor shows up as a diff here.
// Regenerate testdata/table1_seed42.golden deliberately when a change
// is intended (see the file header of tablei.go).
func TestTableIGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated campaign")
	}
	table, err := RunTableI(DefaultTableIConfig(42))
	if err != nil {
		t.Fatalf("RunTableI: %v", err)
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	want, err := os.ReadFile("testdata/table1_seed42.golden")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("Table I drifted from the golden run.\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

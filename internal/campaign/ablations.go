package campaign

import (
	"fmt"
	"io"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

// ---------------------------------------------------------------------
// A1 — multiple sampling periods (Section V.C.1)
// ---------------------------------------------------------------------

// MultiRateResult compares naive and update-aware difference semantics
// on a network where the FSRACC output frame is four times slower than
// the monitor step.
type MultiRateResult struct {
	// NaiveVerdict and AwareVerdict are Rule #4's verdicts under the
	// two semantics over the same trace.
	NaiveVerdict, AwareVerdict core.Verdict
	// NaiveSteps and AwareSteps count the violating steps each
	// semantics detected.
	NaiveSteps, AwareSteps int
}

// RunMultiRateAblation reproduces the paper's Section V.C.1 trap. A
// low Velocity injection makes the feature ramp its torque request for
// well over 400 ms while the true (broadcast) speed exceeds the set
// speed — a Rule #4 violation. With the FSRACC output frame slowed to
// the 40 ms period, naive per-step differences see the held torque as
// constant for three steps out of four and the "is it still
// increasing?" check goes quiet; update-aware differences keep the
// inter-update trend visible and catch the violation.
func RunMultiRateAblation(seed int64) (*MultiRateResult, error) {
	duration := 60 * time.Second
	cfg := scenario.Follow(seed, duration)
	cfg.DB = sigdb.VehicleSlowOutputs()
	bench, err := hil.New(cfg)
	if err != nil {
		return nil, err
	}
	// Inject a low Velocity from t=20s: the feature believes it is far
	// below the set speed and ramps torque while the genuine speed
	// climbs past the set speed.
	err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
		if now == 20*time.Second {
			return b.SetInjection(sigdb.SigVelocity, 5)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tr, err := trace.FromCANLog(bench.Log(), cfg.DB)
	if err != nil {
		return nil, err
	}
	rs, err := rules.Strict()
	if err != nil {
		return nil, err
	}
	out := &MultiRateResult{}
	for _, mode := range []speclang.DeltaMode{speclang.DeltaNaive, speclang.DeltaUpdateAware} {
		mon, err := core.New(core.Config{Rules: rs, DeltaMode: mode, Triage: rules.DefaultTriage()})
		if err != nil {
			return nil, err
		}
		rep, err := mon.CheckTrace(tr)
		if err != nil {
			return nil, err
		}
		rr, ok := rep.Rule("Rule4")
		if !ok {
			return nil, fmt.Errorf("campaign: report missing Rule4")
		}
		steps := 0
		for _, v := range rr.Result.Violations {
			steps += v.Steps()
		}
		if mode == speclang.DeltaNaive {
			out.NaiveVerdict, out.NaiveSteps = rr.Verdict, steps
		} else {
			out.AwareVerdict, out.AwareSteps = rr.Verdict, steps
		}
	}
	return out, nil
}

// Render writes the result.
func (r *MultiRateResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "A1  MULTIPLE SAMPLING PERIODS (Section V.C.1)")
	fmt.Fprintln(w, "    Rule #4 over a trace with RequestedTorque broadcast 4x slower:")
	fmt.Fprintf(w, "    naive per-step delta:    %v  (%d violating steps)\n", r.NaiveVerdict, r.NaiveSteps)
	_, err := fmt.Fprintf(w, "    update-aware delta:      %v  (%d violating steps)\n", r.AwareVerdict, r.AwareSteps)
	return err
}

// ---------------------------------------------------------------------
// A2 — discrete value jumps / warm-up (Section V.C.2)
// ---------------------------------------------------------------------

// consistencySource is the paper's own V.C.2 example: a rule that
// cross-checks the change of TargetRange against the sign of
// TargetRelVel. On target acquisition the range necessarily jumps from
// zero to the true (positive) range even when the closing velocity is
// correctly negative, so the unguarded rule false-alarms on every
// acquisition.
const consistencySource = `
spec RangeRelVelConsistency "range change must agree with relative velocity" {
    severity delta(TargetRange)
    assert (VehicleAhead && TargetRelVel < -0.5) -> delta(TargetRange) <= 0.5
}
`

const consistencyWarmupSource = `
spec RangeRelVelConsistency "range change must agree with relative velocity" {
    warmup 200ms on rise(VehicleAhead)
    severity delta(TargetRange)
    assert (VehicleAhead && TargetRelVel < -0.5) -> delta(TargetRange) <= 0.5
}
`

// WarmupResult compares the acquisition-jump rule with and without the
// warm-up gate over a scenario with several target acquisitions.
type WarmupResult struct {
	// Acquisitions is the number of target acquisitions in the trace.
	Acquisitions int
	// WithoutWarmup and WithWarmup count the violations reported.
	WithoutWarmup, WithWarmup int
}

// RunWarmupAblation reproduces Section V.C.2: without warm-up the
// consistency rule false-alarms at closing target acquisitions ("when a
// vehicle comes into sensor view the relative velocity may be correctly
// reported as negative, but the first change in range seen is
// necessarily positive"); "delaying the check of such a rule until
// after the activation ... avoids this problem".
func RunWarmupAblation(seed int64) (*WarmupResult, error) {
	out := &WarmupResult{}
	for i := 0; i < 4; i++ {
		// A slower vehicle starts beyond radar range; the ego closes
		// on it and acquires it with a genuinely negative relative
		// velocity and a 0 -> range discrete jump.
		cfg := scenario.Approach(seed + int64(i))
		bench, err := hil.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := bench.Run(45*time.Second, nil); err != nil {
			return nil, err
		}
		tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
		if err != nil {
			return nil, err
		}
		// Count acquisitions from the trace itself.
		grid, err := trace.Align(tr, sigdb.FastPeriod)
		if err != nil {
			return nil, err
		}
		ahead, _ := grid.Values(sigdb.SigVehicleAhead)
		for t := 1; t < len(ahead); t++ {
			if ahead[t] == 1 && ahead[t-1] != 1 {
				out.Acquisitions++
			}
		}
		for _, src := range []string{consistencySource, consistencyWarmupSource} {
			f, err := speclang.Parse(src)
			if err != nil {
				return nil, err
			}
			rs, err := speclang.Compile(f, sigdb.Vehicle().SignalNames())
			if err != nil {
				return nil, err
			}
			mon, err := core.New(core.Config{Rules: rs})
			if err != nil {
				return nil, err
			}
			rep, err := mon.CheckGrid(grid)
			if err != nil {
				return nil, err
			}
			n := len(rep.Rules[0].Result.Violations)
			if src == consistencySource {
				out.WithoutWarmup += n
			} else {
				out.WithWarmup += n
			}
		}
	}
	return out, nil
}

// Render writes the result.
func (r *WarmupResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "A2  DISCRETE VALUE JUMPS / WARM-UP (Section V.C.2)")
	fmt.Fprintf(w, "    range/relvel consistency rule over %d target acquisitions:\n", r.Acquisitions)
	fmt.Fprintf(w, "    without warm-up gate: %d false alarms\n", r.WithoutWarmup)
	_, err := fmt.Fprintf(w, "    with 200ms warm-up on acquisition: %d false alarms\n", r.WithWarmup)
	return err
}

// ---------------------------------------------------------------------
// A3 — HIL type checking vs the real vehicle (Section V.C.3)
// ---------------------------------------------------------------------

// TypeCheckResult compares an out-of-range enum injection on the HIL
// bench (strong type checking) against the same injection on a vehicle
// network (none).
type TypeCheckResult struct {
	// HILRejected reports whether the bench's interface rejected the
	// injection.
	HILRejected bool
	// HILViolations is the number of rule violations found on the HIL.
	HILViolations int
	// VehicleViolations is the number found on the unchecked vehicle.
	VehicleViolations int
	// VehicleRulesViolated lists the rules violated on the vehicle.
	VehicleRulesViolated []string
}

// RunTypeCheckAblation reproduces Section V.C.3: the HIL "performed
// strong type checking of fault-injected values, prohibiting things
// such as out-of-range enumerated values", so HIL robustness testing
// misses problems present in the real system. An out-of-range
// SelHeadway ordinal reaches the feature's unguarded headway table only
// on the vehicle, collapsing the desired gap to the standstill minimum
// and driving sustained sub-second headways.
func RunTypeCheckAblation(seed int64) (*TypeCheckResult, error) {
	out := &TypeCheckResult{}
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		return nil, err
	}
	for _, typeChecked := range []bool{true, false} {
		duration := 90 * time.Second
		cfg := scenario.Follow(seed, duration)
		cfg.TypeChecking = typeChecked
		bench, err := hil.New(cfg)
		if err != nil {
			return nil, err
		}
		rejected := false
		err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
			if now == 20*time.Second {
				if err := b.SetInjection(sigdb.SigSelHeadway, 77); err != nil {
					rejected = true // the HIL interface refuses it
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		rep, err := mon.CheckLog(bench.Log(), sigdb.Vehicle())
		if err != nil {
			return nil, err
		}
		count := 0
		var violated []string
		for _, rr := range rep.Rules {
			count += len(rr.Result.Violations)
			if rr.Verdict == core.Violated {
				violated = append(violated, rr.Name())
			}
		}
		if typeChecked {
			out.HILRejected = rejected
			out.HILViolations = count
		} else {
			out.VehicleViolations = count
			out.VehicleRulesViolated = violated
		}
	}
	return out, nil
}

// Render writes the result.
func (r *TypeCheckResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "A3  HIL TYPE CHECKING VS REAL VEHICLE (Section V.C.3)")
	fmt.Fprintf(w, "    out-of-range SelHeadway=77 on the HIL:     rejected=%v, violations=%d\n", r.HILRejected, r.HILViolations)
	_, err := fmt.Fprintf(w, "    same injection on the vehicle network:    violations=%d, rules=%v\n", r.VehicleViolations, r.VehicleRulesViolated)
	return err
}

// ---------------------------------------------------------------------
// A4 — intent approximation tradeoff (Section V.A)
// ---------------------------------------------------------------------

// IntentPoint is one point of the intent-approximation sweep.
type IntentPoint struct {
	// Config is the estimator setting.
	Config core.IntentConfig
	// Confusion scores the estimate against the feature's internal
	// ground truth.
	Confusion core.Confusion
}

// IntentResult is the amplitude/duration threshold sweep.
type IntentResult struct {
	Points []IntentPoint
}

// RunIntentAblation sweeps the acceleration-intent estimator's
// amplitude and duration thresholds against the feature's internal
// intent, reproducing the Section V.A tradeoff: permissive settings
// catch every real intent (no false negatives, usable as safety-case
// evidence) at the cost of false positives from torque ripple; strict
// settings suppress the ripple but start missing brief real intent.
func RunIntentAblation(seed int64) (*IntentResult, error) {
	duration := 4 * time.Minute
	cfg := scenario.Follow(seed, duration)
	bench, err := hil.New(cfg)
	if err != nil {
		return nil, err
	}
	// Capture the feature's ground truth each tick (test harness only;
	// not observable on the bus).
	var truth []bool
	err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
		truth = append(truth, b.Feature().IntendsAccel())
		return nil
	})
	if err != nil {
		return nil, err
	}
	tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		return nil, err
	}
	grid, err := trace.Align(tr, sigdb.FastPeriod)
	if err != nil {
		return nil, err
	}
	torque, _ := grid.Values(sigdb.SigRequestedTorque)
	updated, _ := grid.Updated(sigdb.SigRequestedTorque)
	// The grid has one more step than ticks run (step 0 at t=0);
	// align lengths conservatively.
	n := len(truth)
	if len(torque) < n {
		n = len(torque)
	}
	out := &IntentResult{}
	for _, minRate := range []float64{1, 5, 20, 100} {
		for _, minDur := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 600 * time.Millisecond} {
			ic := core.IntentConfig{MinRate: minRate, MinDuration: minDur}
			est := core.EstimateAccelIntent(torque[:n], updated[:n], grid.StepPeriod(), ic)
			out.Points = append(out.Points, IntentPoint{
				Config:    ic,
				Confusion: core.CompareIntent(est, truth[:n]),
			})
		}
	}
	return out, nil
}

// Render writes the sweep as a table.
func (r *IntentResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "A4  INTENT APPROXIMATION TRADEOFF (Section V.A)")
	fmt.Fprintf(w, "    %-12s %-10s %-8s %-8s %-8s %-8s %-8s %-8s\n",
		"minRate", "minDur", "TP", "FP", "FN", "TN", "FPR", "FNR")
	for _, p := range r.Points {
		c := p.Confusion
		if _, err := fmt.Fprintf(w, "    %-12.0f %-10v %-8d %-8d %-8d %-8d %-8.4f %-8.4f\n",
			p.Config.MinRate, p.Config.MinDuration, c.TP, c.FP, c.FN, c.TN,
			c.FalsePositiveRate(), c.FalseNegativeRate()); err != nil {
			return err
		}
	}
	return nil
}

package recheck

import (
	"sync/atomic"
	"time"

	"cpsmon/internal/obs"
)

// Metrics counts recheck activity: runs, replayed records and frames,
// throughput and worker utilization. As with the archive's metrics,
// instrumentation is package-level — Run is a free function with no
// value to hang counters on — and a nil pointer (the default) costs
// one atomic load per touch point.
type Metrics struct {
	runs       *obs.Counter
	records    *obs.Counter
	frames     *obs.Counter
	sessions   *obs.Counter
	workers    *obs.Gauge
	runSecs    *obs.Histogram
	busySecs   *obs.Histogram
	throughput *obs.Gauge
}

var metrics atomic.Pointer[Metrics]

// Instrument registers the recheck metric families on reg and starts
// counting. Passing nil detaches.
func Instrument(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	m := &Metrics{
		runs: reg.Counter("cpsmon_recheck_runs_total",
			"Recheck runs completed."),
		records: reg.Counter("cpsmon_recheck_records_total",
			"Archive records consumed by recheck runs."),
		frames: reg.Counter("cpsmon_recheck_frames_replayed_total",
			"Frames replayed into recheck monitors."),
		sessions: reg.Counter("cpsmon_recheck_sessions_total",
			"Sessions replayed by recheck runs."),
		workers: reg.Gauge("cpsmon_recheck_workers",
			"Worker count of the most recent recheck run."),
		runSecs: reg.Histogram("cpsmon_recheck_run_seconds",
			"Wall-clock duration of recheck runs.",
			obs.ExpBuckets(1e-3, 4, 12)),
		busySecs: reg.Histogram("cpsmon_recheck_worker_busy_seconds",
			"Per-worker replay time per sharded run; utilization is this over the run duration.",
			obs.ExpBuckets(1e-3, 4, 12)),
		throughput: reg.Gauge("cpsmon_recheck_frames_per_second",
			"Replay throughput of the most recent recheck run."),
	}
	metrics.Store(m)
}

// countRecord records one archive record consumed by the sequential
// engine.
func countRecord() {
	if m := metrics.Load(); m != nil {
		m.records.Inc()
	}
}

// countRecords records a batch of records consumed by the sharded
// engine.
func countRecords(n uint64) {
	if m := metrics.Load(); m != nil {
		m.records.Add(n)
	}
}

// observeRun records a completed run's size, duration, throughput and
// per-worker busy time.
func observeRun(rep *Report, workers int, busy []time.Duration, elapsed time.Duration) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.runs.Inc()
	m.frames.Add(rep.FramesReplayed)
	m.sessions.Add(uint64(len(rep.Sessions)))
	m.workers.Set(float64(workers))
	m.runSecs.Observe(elapsed.Seconds())
	for _, d := range busy {
		m.busySecs.Observe(d.Seconds())
	}
	if s := elapsed.Seconds(); s > 0 {
		m.throughput.Set(float64(rep.FramesReplayed) / s)
	}
}

package recheck_test

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/obs"
	"cpsmon/internal/recheck"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// shardLog synthesizes one session's bus capture: steady following
// traffic with a fault burst whose position and length vary by
// session, so per-session tallies genuinely differ.
func shardLog(t testing.TB, ticks, session int) *can.Log {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	burstAt := ticks/4 + (session*97)%(ticks/4)
	burstLen := ticks/8 + (session*31)%(ticks/8)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 24+float64(session%5))
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 1)
		_ = bus.Set(sigdb.SigTargetRange, 40)
		if tick >= burstAt && tick < burstAt+burstLen {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	return bus.Log()
}

// buildShardedArchive interleaves nSessions sessions' frames in
// wire-sized runs — the round-robin shape a fleet server archives —
// over many small segments, and archives a verdict for most sessions:
// the session's true verdict for some, a deliberately inflated one
// (recheck will report a fix) or a blank one (recheck will report a
// regression) for others, and none at all for every eighth session.
func buildShardedArchive(t testing.TB, dir string, nSessions, ticks int) {
	t.Helper()
	db := sigdb.Vehicle()
	cfg := strictConfig(t)
	offline, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := archive.OpenWriter(dir, archive.Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]can.Frame, nSessions+1)
	truth := make([]*wire.Verdict, nSessions+1)
	for s := 1; s <= nSessions; s++ {
		log := shardLog(t, ticks, s)
		logs[s] = log.Frames()
		rep, err := offline.CheckLog(log, db)
		if err != nil {
			t.Fatal(err)
		}
		truth[s] = &wire.Verdict{
			Rules:          offlineVerdictRules(rep),
			FramesIngested: uint64(log.Len()),
		}
		if !rep.AnyViolated() {
			t.Fatalf("session %d produced no violations; fixture would be vacuous", s)
		}
	}
	const run = 256
	for at := 0; ; at += run {
		wrote := false
		for s := 1; s <= nSessions; s++ {
			frames := logs[s]
			if at >= len(frames) {
				continue
			}
			end := at + run
			if end > len(frames) {
				end = len(frames)
			}
			if err := w.ArchiveFrames(uint64(s), fmt.Sprintf("veh-%02d", s), frames[at:end]); err != nil {
				t.Fatal(err)
			}
			wrote = true
		}
		if !wrote {
			break
		}
	}
	for s := 1; s <= nSessions; s++ {
		if s%8 == 0 {
			continue // no archived verdict: session must not count as Checked
		}
		v := *truth[s]
		v.Rules = append([]wire.RuleVerdict(nil), v.Rules...)
		switch s % 3 {
		case 1: // inflate: archive claims more violations -> recheck is a fix
			v.Rules[0].Violated = true
			v.Rules[0].Violations += 3
			v.Rules[0].Real += 3
		case 2: // blank the rules: recheck finds violations -> regression
			for i := range v.Rules {
				v.Rules[i] = wire.RuleVerdict{Rule: v.Rules[i].Rule}
			}
		}
		if err := w.ArchiveVerdict(uint64(s), fmt.Sprintf("veh-%02d", s), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecheckParallelDifferential is the tentpole's acceptance test: a
// 16-session interleaved archive rechecked at 1, 2, 4 and 8 workers
// must produce deeply equal reports — session order, every tally,
// every RuleDiff — with divergences, regressions and fixes all present
// so the comparison is not vacuous.
func TestRecheckParallelDifferential(t *testing.T) {
	const sessions = 16
	ticks := 3000
	if testing.Short() {
		ticks = 1200
	}
	dir := t.TempDir()
	buildShardedArchive(t, dir, sessions, ticks)
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Segments()) < 3 {
		t.Fatalf("fixture built only %d segments", len(cat.Segments()))
	}
	db := sigdb.Vehicle()

	want, err := recheck.Run(cat, db, strictConfig(t), recheck.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Sessions) != sessions {
		t.Fatalf("replayed %d sessions, want %d", len(want.Sessions), sessions)
	}
	if want.Checked == 0 || want.Divergent == 0 || want.Regressions == 0 || want.Fixes == 0 {
		t.Fatalf("fixture too tame for a differential test: %+v", want)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := recheck.Run(cat, db, strictConfig(t), recheck.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: sharded report diverges from sequential\nseq: %+v\npar: %+v",
				workers, want, got)
		}
	}
}

// poisonFramesRecord rewrites the first record of a segment file so
// its frames payload declares an absurd frame count, re-checksumming
// the envelope so only the frames decoder — which runs on the parallel
// scanner's workers — sees the damage. Layout constants mirror the
// archive format (32-byte file header; envelope = kind, seq, session,
// tmin, tmax, vehicle-length, vehicle, payload, Castagnoli CRC); the
// archive package's own white-box corruption test pins the same
// layout, so format drift fails both tests loudly.
func poisonFramesRecord(t *testing.T, path string) {
	t.Helper()
	const headerSize = 32
	const envFixed = 1 + 8 + 8 + 8 + 8 + 2
	crcTable := crc32.MakeTable(crc32.Castagnoli)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := binary.LittleEndian.Uint32(raw[headerSize : headerSize+4])
	body := raw[headerSize+4 : headerSize+4+int(n)]
	data := body[:len(body)-4]
	if data[0] != 1 { // Kind bit for frames records
		t.Fatalf("first record of %s is kind %d, want a frames record", path, data[0])
	}
	vlen := int(binary.LittleEndian.Uint16(data[33:35]))
	payload := data[envFixed+vlen:]
	binary.LittleEndian.PutUint32(payload[:4], 0xFFFFFFF0)
	binary.LittleEndian.PutUint32(body[len(body)-4:], crc32.Checksum(data, crcTable))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecheckWorkerErrorSurfaces corrupts a frames payload in a middle
// segment (envelope checksum intact, so only the scanner workers'
// frames decoder trips over it): Run — sequential and sharded alike —
// must return that one error promptly instead of hanging the reader or
// the replay shards.
func TestRecheckWorkerErrorSurfaces(t *testing.T) {
	const sessions = 8
	dir := t.TempDir()
	db := sigdb.Vehicle()
	buildShardedArchive(t, dir, sessions, 2000)
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := cat.Segments()
	if len(segs) < 3 {
		t.Fatalf("fixture built only %d segments", len(segs))
	}
	poisonFramesRecord(t, segs[len(segs)/2].Path)
	// Reopen: sealed segments serve through their footer, so the
	// record-level damage stays invisible until decode time.
	cat, err = archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}

	var errs []string
	for _, workers := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			_, err := recheck.Run(cat, db, strictConfig(t), recheck.Options{Workers: workers})
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: poisoned archive rechecked cleanly", workers)
			}
			if !strings.Contains(err.Error(), "frames payload") {
				t.Fatalf("workers=%d: error %q is not the frames decode failure", workers, err)
			}
			errs = append(errs, err.Error())
		case <-time.After(60 * time.Second):
			t.Fatalf("workers=%d: Run hung on a worker-side decode error", workers)
		}
	}
	if errs[0] != errs[1] {
		t.Fatalf("error differs by worker count:\nseq: %s\npar: %s", errs[0], errs[1])
	}
}

// TestRecheckRejectsNegativeWorkers pins the Options validation.
func TestRecheckRejectsNegativeWorkers(t *testing.T) {
	dir := t.TempDir()
	w, err := archive.OpenWriter(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recheck.Run(cat, sigdb.Vehicle(), strictConfig(t), recheck.Options{Workers: -1}); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

// TestRecheckMetrics checks the obs wiring: an instrumented run
// populates the throughput and worker-utilization families.
func TestRecheckMetrics(t *testing.T) {
	dir := t.TempDir()
	buildShardedArchive(t, dir, 4, 800)
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	recheck.Instrument(reg)
	defer recheck.Instrument(nil)
	rep, err := recheck.Run(cat, sigdb.Vehicle(), strictConfig(t), recheck.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]float64)
	reg.Each(func(m obs.Metric) {
		got[m.Name] += m.Value
	})
	if got["cpsmon_recheck_runs_total"] != 1 {
		t.Errorf("runs_total = %v, want 1", got["cpsmon_recheck_runs_total"])
	}
	if got["cpsmon_recheck_frames_replayed_total"] != float64(rep.FramesReplayed) {
		t.Errorf("frames_replayed_total = %v, want %d",
			got["cpsmon_recheck_frames_replayed_total"], rep.FramesReplayed)
	}
	if got["cpsmon_recheck_sessions_total"] != float64(len(rep.Sessions)) {
		t.Errorf("sessions_total = %v, want %d",
			got["cpsmon_recheck_sessions_total"], len(rep.Sessions))
	}
	if got["cpsmon_recheck_records_total"] == 0 {
		t.Error("records_total stayed zero")
	}
	if got["cpsmon_recheck_workers"] != 2 {
		t.Errorf("workers gauge = %v, want 2", got["cpsmon_recheck_workers"])
	}
}

// BenchmarkRecheckParallel measures sharded replay scaling over a
// 16-session interleaved archive at 1 worker, 4 workers and
// GOMAXPROCS, reported as frames/sec.
func BenchmarkRecheckParallel(b *testing.B) {
	const sessions = 16
	dir := b.TempDir()
	buildShardedArchive(b, dir, sessions, 3000)
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		b.Fatal(err)
	}
	db := sigdb.Vehicle()
	cfg := strictConfig(b)
	base, err := recheck.Run(cat, db, cfg, recheck.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := recheck.Run(cat, db, cfg, recheck.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if rep.FramesReplayed != base.FramesReplayed {
					b.Fatalf("replayed %d frames, want %d", rep.FramesReplayed, base.FramesReplayed)
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(base.FramesReplayed)
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(total/secs, "frames/sec")
			}
		})
	}
}

package recheck_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/fleet"
	"cpsmon/internal/hil"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// injection is one fault window applied while generating a HIL log.
type injection struct {
	from, to time.Duration
	signals  map[string]float64
}

// hilLog generates one follow-scenario bus capture with the given
// fault windows, as the fleet acceptance tests do.
func hilLog(t testing.TB, seed int64, dur time.Duration, faults []injection) *can.Log {
	t.Helper()
	cfg := scenario.Follow(seed, dur)
	cfg.TypeChecking = false
	bench, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	onTick := func(now time.Duration, b *hil.Bench) error {
		for _, f := range faults {
			switch now {
			case f.from:
				for name, v := range f.signals {
					if err := b.SetInjection(name, v); err != nil {
						return err
					}
				}
			case f.to:
				for name := range f.signals {
					b.ClearInjection(name)
				}
			}
		}
		return nil
	}
	if err := bench.Run(dur, onTick); err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return bench.Log()
}

// fleetLogs builds n distinct scenario logs: blind radar, corrupt
// range, runaway set-speed and clean runs, cycled.
func fleetLogs(t testing.TB, n int, dur time.Duration) []*can.Log {
	t.Helper()
	frac := func(num, den time.Duration) time.Duration {
		return dur * num / den / sigdb.FastPeriod * sigdb.FastPeriod
	}
	blind := []injection{{
		from: frac(1, 3), to: frac(2, 3),
		signals: map[string]float64{
			sigdb.SigVehicleAhead: 0,
			sigdb.SigTargetRange:  0,
			sigdb.SigTargetRelVel: 0,
		},
	}}
	corrupt := []injection{{
		from: frac(1, 4), to: frac(7, 12),
		signals: map[string]float64{sigdb.SigTargetRange: 4294967296.000001},
	}}
	runaway := []injection{{
		from: frac(5, 12), to: frac(3, 4),
		signals: map[string]float64{sigdb.SigACCSetSpeed: 1e9},
	}}
	kinds := [][]injection{blind, corrupt, runaway, nil}

	logs := make([]*can.Log, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			logs[i] = hilLog(t, int64(100+i), dur, kinds[i%len(kinds)])
		}(i)
	}
	wg.Wait()
	return logs
}

// strictConfig is the monitor configuration the fleet server runs with
// for the empty spec name.
func strictConfig(t testing.TB) core.Config {
	t.Helper()
	rs, err := rules.Strict()
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{Rules: rs, Triage: rules.DefaultTriage()}
}

// tightenedConfig is the strict set with Rule0 deliberately tightened
// to "ACC must never be enabled" — traffic that was clean under the
// real rule now violates, so a recheck against the archive must report
// Rule0 regressions.
func tightenedConfig(t testing.TB) core.Config {
	t.Helper()
	src := strings.Replace(rules.StrictSource,
		"assert ServiceACC -> !ACCEnabled",
		"assert !ACCEnabled", 1)
	if src == rules.StrictSource {
		t.Fatal("tightening substitution did not apply")
	}
	f, err := speclang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := speclang.Compile(f, sigdb.Vehicle().SignalNames())
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{Rules: rs, Triage: rules.DefaultTriage()}
}

// offlineVerdictRules renders an offline CheckLog report as the wire
// rule verdicts a session over the same frames must produce.
func offlineVerdictRules(rep *core.Report) []wire.RuleVerdict {
	out := make([]wire.RuleVerdict, 0, len(rep.Rules))
	for _, rr := range rep.Rules {
		out = append(out, wire.RuleVerdict{
			Rule:       rr.Name(),
			Violated:   rr.Verdict == core.Violated,
			Violations: uint32(len(rr.Result.Violations)),
			Real:       uint32(rr.Count(core.ClassReal)),
			Transient:  uint32(rr.Count(core.ClassTransient)),
			Negligible: uint32(rr.Count(core.ClassNegligible)),
		})
	}
	return out
}

// archiveFleetRun streams the logs through a fleet server with an
// archive attached and returns the sealed archive directory plus the
// verdict each session received, keyed by vehicle name.
func archiveFleetRun(t *testing.T, logs []*can.Log) (string, map[string]*wire.Verdict) {
	t.Helper()
	dir := t.TempDir()
	aw, err := archive.OpenWriter(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fleet.NewServer(fleet.Config{
		DB: sigdb.Vehicle(),
		Resolve: func(name string) (*speclang.RuleSet, error) {
			return rules.Strict()
		},
		Triage:   rules.DefaultTriage(),
		Archiver: aw,
		// Lossless capture: the recheck equivalence below needs every
		// applied frame run on disk.
		ArchiveQueue: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	verdicts := make(map[string]*wire.Verdict, len(logs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, log := range logs {
		wg.Add(1)
		go func(i int, log *can.Log) {
			defer wg.Done()
			vehicle := fmt.Sprintf("veh-%02d", i)
			c, err := fleet.Dial(addr, vehicle, "", nil)
			if err != nil {
				t.Errorf("%s: %v", vehicle, err)
				return
			}
			defer c.Close()
			v, err := c.Replay(log, 0)
			if err != nil {
				t.Errorf("%s: %v", vehicle, err)
				return
			}
			mu.Lock()
			verdicts[vehicle] = v
			mu.Unlock()
		}(i, log)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.ArchiveDropped != 0 || st.ArchiveErrors != 0 {
		t.Fatalf("archive run not lossless: %+v", st)
	}
	return dir, verdicts
}

// TestRecheckEndToEnd is the acceptance test: an 8-session fleet run
// archived to disk, rechecked with the same specs, reports zero
// divergence and verdicts byte-for-byte equal to offline CheckLog over
// the original logs; a deliberately tightened spec reports the
// expected per-rule regressions.
func TestRecheckEndToEnd(t *testing.T) {
	sessions := 8
	const dur = 60 * time.Second
	if testing.Short() {
		sessions = 4
	}
	logs := fleetLogs(t, sessions, dur)
	dir, verdicts := archiveFleetRun(t, logs)
	if len(verdicts) != sessions {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), sessions)
	}

	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := sigdb.Vehicle()

	rep, err := recheck.Run(cat, db, strictConfig(t), recheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != sessions || len(rep.Sessions) != sessions {
		t.Fatalf("rechecked %d of %d sessions (%d reports)", rep.Checked, sessions, len(rep.Sessions))
	}
	if rep.Divergent != 0 || rep.Regressions != 0 || rep.Fixes != 0 {
		for _, sr := range rep.Sessions {
			for _, d := range sr.Diffs {
				t.Errorf("session %d (%s) rule %s: archived %+v, rechecked %+v",
					sr.Session, sr.Vehicle, d.Rule, d.Archived, d.Rechecked)
			}
		}
		t.Fatalf("same-spec recheck diverged: %d sessions, %d regressions, %d fixes",
			rep.Divergent, rep.Regressions, rep.Fixes)
	}

	// Byte-for-byte: the rechecked verdict equals the archived one and
	// the offline CheckLog verdict over the original log.
	vehicleLog := make(map[string]*can.Log, sessions)
	for i, log := range logs {
		vehicleLog[fmt.Sprintf("veh-%02d", i)] = log
	}
	offline, err := core.New(strictConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var violations uint32
	for _, sr := range rep.Sessions {
		if sr.Archived == nil {
			t.Fatalf("session %d (%s) has no archived verdict", sr.Session, sr.Vehicle)
		}
		if got, want := wire.Marshal(sr.Rechecked), wire.Marshal(*sr.Archived); !bytes.Equal(got, want) {
			t.Fatalf("session %d (%s): rechecked verdict differs from archived:\n got %x\nwant %x",
				sr.Session, sr.Vehicle, got, want)
		}
		if delivered := verdicts[sr.Vehicle]; delivered == nil {
			t.Fatalf("no delivered verdict for %s", sr.Vehicle)
		} else if !bytes.Equal(wire.Marshal(*delivered), wire.Marshal(sr.Rechecked)) {
			t.Fatalf("session %d (%s): rechecked verdict differs from the one delivered to the client",
				sr.Session, sr.Vehicle)
		}
		log := vehicleLog[sr.Vehicle]
		if log == nil {
			t.Fatalf("unknown vehicle %q in recheck report", sr.Vehicle)
		}
		offRep, err := offline.CheckLog(log, db)
		if err != nil {
			t.Fatal(err)
		}
		want := wire.Verdict{Rules: offlineVerdictRules(offRep), FramesIngested: uint64(log.Len())}
		if got := wire.Marshal(sr.Rechecked); !bytes.Equal(got, wire.Marshal(want)) {
			t.Fatalf("session %d (%s): rechecked verdict differs from offline CheckLog:\n got %+v\nwant %+v",
				sr.Session, sr.Vehicle, sr.Rechecked, want)
		}
		for _, rv := range sr.Rechecked.Rules {
			violations += rv.Violations
		}
	}
	if violations == 0 {
		t.Fatal("no violations across the fleet run; the equivalence is vacuous")
	}

	// Tightened spec: Rule0 now fires on traffic the archived verdicts
	// called clean. Every session whose offline tightened run finds
	// more Rule0 violations must surface as a Rule0 regression.
	tcfg := tightenedConfig(t)
	trep, err := recheck.Run(cat, db, tcfg, recheck.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tightened, err := core.New(tightenedConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	wantRegressions := 0
	for _, sr := range trep.Sessions {
		log := vehicleLog[sr.Vehicle]
		offRep, err := tightened.CheckLog(log, db)
		if err != nil {
			t.Fatal(err)
		}
		wantRules := offlineVerdictRules(offRep)
		for i, rv := range sr.Rechecked.Rules {
			if rv != wantRules[i] {
				t.Fatalf("session %d (%s) rule %s: tightened recheck %+v, offline %+v",
					sr.Session, sr.Vehicle, rv.Rule, rv, wantRules[i])
			}
		}
		var archivedRule0, tightRule0 wire.RuleVerdict
		for _, rv := range sr.Archived.Rules {
			if rv.Rule == "Rule0" {
				archivedRule0 = rv
			}
		}
		for _, rv := range sr.Rechecked.Rules {
			if rv.Rule == "Rule0" {
				tightRule0 = rv
			}
		}
		if tightRule0.Violations > archivedRule0.Violations {
			wantRegressions++
			found := false
			for _, d := range sr.Diffs {
				if d.Rule == "Rule0" && d.Regression {
					found = true
				}
			}
			if !found {
				t.Fatalf("session %d (%s): Rule0 got worse (%d -> %d violations) but no regression reported",
					sr.Session, sr.Vehicle, archivedRule0.Violations, tightRule0.Violations)
			}
		}
	}
	if wantRegressions == 0 {
		t.Fatal("tightened spec regressed no session; the regression assertion is vacuous")
	}
	if trep.Regressions < wantRegressions {
		t.Fatalf("report counts %d regressions, want at least %d", trep.Regressions, wantRegressions)
	}
	if trep.Divergent == 0 {
		t.Fatal("tightened recheck reported zero divergent sessions")
	}
}

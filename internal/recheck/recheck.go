// Package recheck replays archived fleet traffic through a freshly
// compiled spec set and diffs the resulting verdicts against the
// archived ones.
//
// The archive records exactly the frame runs that reached each
// session's monitor (post stale-filter), so replaying them through a
// monitor compiled from the same spec reproduces the archived verdict
// rule for rule — any divergence means the spec, the triage
// thresholds, or the monitor implementation changed. Running a
// tightened spec over the same traffic turns the archive into a
// regression corpus: the report lists, per rule, which sessions got
// worse (regressions) and which got better (fixes).
//
// Only the rule fields of a verdict are compared. Ingest counters
// (frames dropped, rejected) describe the original transport and are
// not reproducible from the archive.
package recheck

import (
	"fmt"
	"sort"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// Options narrows which archived sessions are rechecked.
type Options struct {
	// From and To bound the capture-time window, as archive.Query.
	From, To time.Duration
	// Vehicle, when non-empty, selects one vehicle.
	Vehicle string
	// Session, when nonzero, selects one session.
	Session uint64
}

// RuleDiff is one rule whose rechecked verdict differs from the
// archived one.
type RuleDiff struct {
	Rule string
	// Archived and Rechecked hold the two sides. A rule absent from
	// one side (the spec added or removed it) leaves that side zero
	// with Violated false.
	Archived  wire.RuleVerdict
	Rechecked wire.RuleVerdict
	// Regression reports the rechecked side is worse: newly violated,
	// or more violations, or more real violations. The opposite is a
	// fix.
	Regression bool
}

// SessionReport is one archived session's recheck outcome.
type SessionReport struct {
	Session uint64
	Vehicle string
	// Frames counts frames replayed into the monitor; Rejected counts
	// frames the monitor refused (archived runs are post-filter, so
	// this stays zero unless the archive was assembled out of order).
	Frames   uint64
	Rejected uint64
	// Archived is the verdict found in the archive, nil when the
	// session has none in the queried range (still streaming when
	// archived, or excluded by the window).
	Archived *wire.Verdict
	// Rechecked is the verdict the replay produced.
	Rechecked wire.Verdict
	// Diffs lists rules whose outcome changed; empty means the
	// session's verdicts agree.
	Diffs []RuleDiff
}

// Divergent reports whether this session's rechecked verdict differs
// from its archived one. A session with no archived verdict is not
// divergent — there is nothing to diverge from.
func (sr *SessionReport) Divergent() bool {
	return sr.Archived != nil && len(sr.Diffs) > 0
}

// Report is the outcome of one recheck run.
type Report struct {
	// Sessions holds one entry per replayed session, in session order.
	Sessions []SessionReport
	// Checked counts sessions with an archived verdict to compare
	// against; Divergent counts those whose verdicts differ.
	Checked   int
	Divergent int
	// Regressions and Fixes count rule-level diffs across all
	// sessions by direction.
	Regressions int
	Fixes       int
	// FramesReplayed counts frames fed to monitors across sessions.
	FramesReplayed uint64
}

// replay accumulates one session's recheck state during the archive
// pass.
type replay struct {
	vehicle  string
	om       *core.OnlineMonitor
	tally    map[string]*tally
	frames   uint64
	rejected uint64
	archived *wire.Verdict
}

// tally mirrors the fleet session's per-rule verdict accounting.
type tally struct {
	violations, real, transient, negligible uint32
}

// Run replays the selected archive range through a monitor compiled
// from cfg and reports per-session, per-rule agreement with the
// archived verdicts. The archive is read in one pass; interleaved
// sessions each get their own monitor instance over the shared
// compiled spec.
func Run(cat *archive.Catalog, db *sigdb.DB, cfg core.Config, opt Options) (*Report, error) {
	mon, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	var ruleOrder []string
	for _, r := range cfg.Rules.Rules() {
		ruleOrder = append(ruleOrder, r.Name)
	}

	sessions := make(map[uint64]*replay)
	it := cat.Iter(archive.Query{
		From: opt.From, To: opt.To,
		Vehicle: opt.Vehicle, Session: opt.Session,
		Kinds: archive.KindFrames | archive.KindVerdict,
	})
	defer it.Close()
	for it.Next() {
		rec := it.Record()
		r := sessions[rec.Session]
		if r == nil {
			om, err := mon.Online(db)
			if err != nil {
				return nil, err
			}
			r = &replay{vehicle: rec.Vehicle, om: om, tally: make(map[string]*tally)}
			sessions[rec.Session] = r
		}
		switch rec.Kind {
		case archive.KindFrames:
			evs, rejected, err := r.om.PushFrames(rec.Frames)
			if err != nil {
				return nil, fmt.Errorf("recheck: session %d: %w", rec.Session, err)
			}
			r.rejected += uint64(rejected)
			r.frames += uint64(len(rec.Frames) - rejected)
			r.account(evs)
		case archive.KindVerdict:
			v := rec.Verdict
			r.archived = &v
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}

	rep := &Report{}
	ids := make([]uint64, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := sessions[id]
		evs, err := r.om.Close()
		if err != nil {
			return nil, fmt.Errorf("recheck: session %d: %w", id, err)
		}
		r.account(evs)
		sr := SessionReport{
			Session:  id,
			Vehicle:  r.vehicle,
			Frames:   r.frames,
			Rejected: r.rejected,
			Archived: r.archived,
			Rechecked: wire.Verdict{
				FramesIngested: r.frames,
				FramesRejected: r.rejected,
			},
		}
		for _, name := range ruleOrder {
			rv := wire.RuleVerdict{Rule: name}
			if t := r.tally[name]; t != nil {
				rv.Violated = t.violations > 0
				rv.Violations = t.violations
				rv.Real = t.real
				rv.Transient = t.transient
				rv.Negligible = t.negligible
			}
			sr.Rechecked.Rules = append(sr.Rechecked.Rules, rv)
		}
		if r.archived != nil {
			sr.Diffs = diffRules(r.archived.Rules, sr.Rechecked.Rules)
			rep.Checked++
			if len(sr.Diffs) > 0 {
				rep.Divergent++
			}
			for _, d := range sr.Diffs {
				if d.Regression {
					rep.Regressions++
				} else {
					rep.Fixes++
				}
			}
		}
		rep.FramesReplayed += r.frames
		rep.Sessions = append(rep.Sessions, sr)
	}
	return rep, nil
}

// account folds monitor events into the per-rule tally, exactly as the
// fleet session does when building its verdict.
func (r *replay) account(evs []core.OnlineEvent) {
	for _, e := range evs {
		if e.Kind != speclang.ViolationEnd {
			continue
		}
		t := r.tally[e.Rule]
		if t == nil {
			t = &tally{}
			r.tally[e.Rule] = t
		}
		t.violations++
		switch e.Class {
		case core.ClassReal:
			t.real++
		case core.ClassTransient:
			t.transient++
		case core.ClassNegligible:
			t.negligible++
		}
	}
}

// diffRules compares the rule lists of two verdicts by rule name,
// returning one RuleDiff per rule whose counted fields differ. Rules
// present on only one side (the spec changed shape) always diff.
func diffRules(archived, rechecked []wire.RuleVerdict) []RuleDiff {
	byName := make(map[string]wire.RuleVerdict, len(archived))
	for _, rv := range archived {
		byName[rv.Rule] = rv
	}
	var diffs []RuleDiff
	seen := make(map[string]bool, len(rechecked))
	for _, now := range rechecked {
		seen[now.Rule] = true
		was := byName[now.Rule] // zero value when the rule is new
		if sameRule(was, now) {
			continue
		}
		diffs = append(diffs, RuleDiff{
			Rule: now.Rule, Archived: was, Rechecked: now,
			Regression: worse(was, now),
		})
	}
	for _, was := range archived {
		if seen[was.Rule] {
			continue
		}
		// Rule dropped from the spec: only report it if it had found
		// anything — losing a clean rule changes nothing.
		if was.Violations == 0 && !was.Violated {
			continue
		}
		diffs = append(diffs, RuleDiff{
			Rule: was.Rule, Archived: was,
			Rechecked:  wire.RuleVerdict{Rule: was.Rule},
			Regression: false,
		})
	}
	return diffs
}

// sameRule compares the counted fields of two rule verdicts.
func sameRule(a, b wire.RuleVerdict) bool {
	return a.Violated == b.Violated &&
		a.Violations == b.Violations &&
		a.Real == b.Real &&
		a.Transient == b.Transient &&
		a.Negligible == b.Negligible
}

// worse reports whether now is a regression relative to was.
func worse(was, now wire.RuleVerdict) bool {
	if now.Violated != was.Violated {
		return now.Violated
	}
	if now.Violations != was.Violations {
		return now.Violations > was.Violations
	}
	return now.Real > was.Real
}

// Package recheck replays archived fleet traffic through a freshly
// compiled spec set and diffs the resulting verdicts against the
// archived ones.
//
// The archive records exactly the frame runs that reached each
// session's monitor (post stale-filter), so replaying them through a
// monitor compiled from the same spec reproduces the archived verdict
// rule for rule — any divergence means the spec, the triage
// thresholds, or the monitor implementation changed. Running a
// tightened spec over the same traffic turns the archive into a
// regression corpus: the report lists, per rule, which sessions got
// worse (regressions) and which got better (fixes).
//
// Only the rule fields of a verdict are compared. Ingest counters
// (frames dropped, rejected) describe the original transport and are
// not reproducible from the archive.
//
// Recheck is an offline batch job, so it parallelizes freely: sessions
// are sharded onto a worker pool (Options.Workers) and segments are
// decoded ahead of the replay by the archive's parallel scanner. The
// sharding is deterministic — every session is wholly owned by one
// worker and its records arrive in archive order, and the final report
// is assembled in sorted session order — so the report is identical at
// any worker count, byte for byte.
package recheck

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// Options narrows which archived sessions are rechecked and sizes the
// replay worker pool.
type Options struct {
	// From and To bound the capture-time window, as archive.Query.
	From, To time.Duration
	// Vehicle, when non-empty, selects one vehicle.
	Vehicle string
	// Session, when nonzero, selects one session.
	Session uint64
	// Workers bounds how many session shards replay concurrently:
	// 0 means GOMAXPROCS, 1 forces the sequential engine. The report
	// is identical at any value.
	Workers int
}

// RuleDiff is one rule whose rechecked verdict differs from the
// archived one.
type RuleDiff struct {
	Rule string
	// Archived and Rechecked hold the two sides. A rule absent from
	// one side (the spec added or removed it) leaves that side zero
	// with Violated false.
	Archived  wire.RuleVerdict
	Rechecked wire.RuleVerdict
	// Regression reports the rechecked side is worse: newly violated,
	// or more violations, or more real violations. The opposite is a
	// fix.
	Regression bool
}

// SessionReport is one archived session's recheck outcome.
type SessionReport struct {
	Session uint64
	Vehicle string
	// Frames counts frames replayed into the monitor; Rejected counts
	// frames the monitor refused (archived runs are post-filter, so
	// this stays zero unless the archive was assembled out of order).
	Frames   uint64
	Rejected uint64
	// Archived is the verdict found in the archive, nil when the
	// session has none in the queried range (still streaming when
	// archived, or excluded by the window).
	Archived *wire.Verdict
	// Rechecked is the verdict the replay produced.
	Rechecked wire.Verdict
	// Diffs lists rules whose outcome changed; empty means the
	// session's verdicts agree.
	Diffs []RuleDiff
}

// Divergent reports whether this session's rechecked verdict differs
// from its archived one. A session with no archived verdict is not
// divergent — there is nothing to diverge from.
func (sr *SessionReport) Divergent() bool {
	return sr.Archived != nil && len(sr.Diffs) > 0
}

// Report is the outcome of one recheck run.
type Report struct {
	// Sessions holds one entry per replayed session, in session order.
	Sessions []SessionReport
	// Checked counts sessions with an archived verdict to compare
	// against; Divergent counts those whose verdicts differ.
	Checked   int
	Divergent int
	// Regressions and Fixes count rule-level diffs across all
	// sessions by direction.
	Regressions int
	Fixes       int
	// FramesReplayed counts frames fed to monitors across sessions.
	FramesReplayed uint64
}

// replay accumulates one session's recheck state during the archive
// pass.
type replay struct {
	vehicle  string
	om       *core.OnlineMonitor
	tally    map[string]*tally
	frames   uint64
	rejected uint64
	archived *wire.Verdict
}

// tally mirrors the fleet session's per-rule verdict accounting.
type tally struct {
	violations, real, transient, negligible uint32
}

// Run replays the selected archive range through a monitor compiled
// from cfg and reports per-session, per-rule agreement with the
// archived verdicts. The archive is read in one pass; interleaved
// sessions each get their own monitor instance over the shared
// compiled spec. With Options.Workers above one, sessions are sharded
// onto that many replay workers (session number modulo worker count)
// fed by a pipelined segment scan; any error — a worker-side replay
// failure or an iterator decode failure — surfaces as the one error
// Run returns, never a hang.
func Run(cat *archive.Catalog, db *sigdb.DB, cfg core.Config, opt Options) (*Report, error) {
	start := time.Now()
	if opt.Workers < 0 {
		return nil, fmt.Errorf("recheck: negative worker count %d", opt.Workers)
	}
	mon, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	var ruleOrder []string
	for _, r := range cfg.Rules.Rules() {
		ruleOrder = append(ruleOrder, r.Name)
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	q := archive.Query{
		From: opt.From, To: opt.To,
		Vehicle: opt.Vehicle, Session: opt.Session,
		Kinds: archive.KindFrames | archive.KindVerdict,
	}

	var sessions map[uint64]*replay
	var busy []time.Duration
	if workers <= 1 {
		sessions, err = runSequential(cat, db, mon, q)
	} else {
		sessions, busy, err = runSharded(cat, db, mon, q, workers)
	}
	if err != nil {
		return nil, err
	}
	rep, err := finalize(sessions, ruleOrder)
	if err != nil {
		return nil, err
	}
	observeRun(rep, workers, busy, time.Since(start))
	return rep, nil
}

// runSequential is the single-threaded replay: one pass over the
// sequential iterator, sessions demultiplexed into a map.
func runSequential(cat *archive.Catalog, db *sigdb.DB, mon *core.Monitor, q archive.Query) (map[uint64]*replay, error) {
	sessions := make(map[uint64]*replay)
	it := cat.Iter(q)
	defer it.Close()
	for it.Next() {
		rec := it.Record()
		countRecord()
		r := sessions[rec.Session]
		if r == nil {
			om, err := mon.Online(db)
			if err != nil {
				return nil, err
			}
			r = &replay{vehicle: rec.Vehicle, om: om, tally: make(map[string]*tally)}
			sessions[rec.Session] = r
		}
		if err := r.apply(rec); err != nil {
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return sessions, nil
}

// shardBatch is how many records the reader accumulates per shard
// before handing them to the worker — large enough to amortize the
// channel transfer, small enough to keep every shard busy on
// interleaved archives.
const shardBatch = 64

// batch is the unit of reader-to-shard transfer: record copies with
// their frames moved into a batch-owned arena, since both iterator and
// parallel-scanner frame buffers are scratch that must not cross a
// goroutine boundary by reference.
type batch struct {
	recs   []archive.Record
	frames []can.Frame
}

// shard is one replay worker's private state. Sessions are assigned by
// session number modulo worker count, so the maps are disjoint and the
// merge after the join is a plain union.
type shard struct {
	mon      *core.Monitor
	db       *sigdb.DB
	sessions map[uint64]*replay
	err      error
	busy     time.Duration
}

// process replays one batch, creating session state on first sight.
func (s *shard) process(b *batch) error {
	for i := range b.recs {
		rec := &b.recs[i]
		r := s.sessions[rec.Session]
		if r == nil {
			om, err := s.mon.Online(s.db)
			if err != nil {
				return err
			}
			r = &replay{vehicle: rec.Vehicle, om: om, tally: make(map[string]*tally)}
			s.sessions[rec.Session] = r
		}
		if err := r.apply(rec); err != nil {
			return err
		}
	}
	return nil
}

// apply folds one archived record into the session's replay state.
func (r *replay) apply(rec *archive.Record) error {
	switch rec.Kind {
	case archive.KindFrames:
		evs, rejected, err := r.om.PushFrames(rec.Frames)
		if err != nil {
			return fmt.Errorf("recheck: session %d: %w", rec.Session, err)
		}
		r.rejected += uint64(rejected)
		r.frames += uint64(len(rec.Frames) - rejected)
		r.account(evs)
	case archive.KindVerdict:
		v := rec.Verdict
		r.archived = &v
	}
	return nil
}

// runSharded fans the archive pass over a worker pool: a pipelined
// segment scan feeds a reader that routes each record to its session's
// shard. A failing shard raises a flag the reader polls, so the scan
// is closed mid-iteration instead of replaying to the end; the workers
// drain their channels without processing, and the first error (in
// shard order, then the iterator's) is returned.
func runSharded(cat *archive.Catalog, db *sigdb.DB, mon *core.Monitor, q archive.Query, workers int) (map[uint64]*replay, []time.Duration, error) {
	it := cat.ParallelIter(q, archive.ScanOptions{Workers: workers})
	defer it.Close()

	var pool sync.Pool
	pool.New = func() any { return new(batch) }
	chans := make([]chan *batch, workers)
	shards := make([]*shard, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *batch, 4)
		sh := &shard{mon: mon, db: db, sessions: make(map[uint64]*replay)}
		shards[w] = sh
		wg.Add(1)
		go func(ch <-chan *batch) {
			defer wg.Done()
			for b := range ch {
				if sh.err == nil {
					t0 := time.Now()
					if err := sh.process(b); err != nil {
						sh.err = err
						failed.Store(true)
					}
					sh.busy += time.Since(t0)
				}
				b.recs, b.frames = b.recs[:0], b.frames[:0]
				pool.Put(b)
			}
		}(chans[w])
	}

	cur := make([]*batch, workers)
	flush := func(w int) {
		if cur[w] != nil && len(cur[w].recs) > 0 {
			chans[w] <- cur[w]
			cur[w] = nil
		}
	}
	records := uint64(0)
	for it.Next() {
		if failed.Load() {
			break // a shard already failed: stop scanning early
		}
		rec := *it.Record()
		records++
		w := int(rec.Session % uint64(workers))
		b := cur[w]
		if b == nil {
			b = pool.Get().(*batch)
			cur[w] = b
		}
		if len(rec.Frames) > 0 {
			// Copy into the batch arena; records sliced from it stay
			// valid across later appends (old backing arrays persist).
			at := len(b.frames)
			b.frames = append(b.frames, rec.Frames...)
			rec.Frames = b.frames[at:len(b.frames):len(b.frames)]
		}
		b.recs = append(b.recs, rec)
		if len(b.recs) >= shardBatch {
			flush(w)
		}
	}
	readErr := it.Err()
	it.Close()
	for w := range chans {
		flush(w)
		close(chans[w])
	}
	wg.Wait()
	countRecords(records)

	busy := make([]time.Duration, workers)
	for w, sh := range shards {
		busy[w] = sh.busy
		if sh.err != nil {
			return nil, nil, sh.err
		}
	}
	if readErr != nil {
		return nil, nil, readErr
	}
	merged := make(map[uint64]*replay)
	for _, sh := range shards {
		for id, r := range sh.sessions {
			merged[id] = r
		}
	}
	return merged, busy, nil
}

// finalize closes every session's monitor and assembles the report in
// sorted session order — the step that makes the output independent of
// how the replay was scheduled.
func finalize(sessions map[uint64]*replay, ruleOrder []string) (*Report, error) {
	rep := &Report{}
	ids := make([]uint64, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := sessions[id]
		evs, err := r.om.Close()
		if err != nil {
			return nil, fmt.Errorf("recheck: session %d: %w", id, err)
		}
		r.account(evs)
		sr := SessionReport{
			Session:  id,
			Vehicle:  r.vehicle,
			Frames:   r.frames,
			Rejected: r.rejected,
			Archived: r.archived,
			Rechecked: wire.Verdict{
				FramesIngested: r.frames,
				FramesRejected: r.rejected,
			},
		}
		for _, name := range ruleOrder {
			rv := wire.RuleVerdict{Rule: name}
			if t := r.tally[name]; t != nil {
				rv.Violated = t.violations > 0
				rv.Violations = t.violations
				rv.Real = t.real
				rv.Transient = t.transient
				rv.Negligible = t.negligible
			}
			sr.Rechecked.Rules = append(sr.Rechecked.Rules, rv)
		}
		if r.archived != nil {
			sr.Diffs = diffRules(r.archived.Rules, sr.Rechecked.Rules)
			rep.Checked++
			if len(sr.Diffs) > 0 {
				rep.Divergent++
			}
			for _, d := range sr.Diffs {
				if d.Regression {
					rep.Regressions++
				} else {
					rep.Fixes++
				}
			}
		}
		rep.FramesReplayed += r.frames
		rep.Sessions = append(rep.Sessions, sr)
	}
	return rep, nil
}

// account folds monitor events into the per-rule tally, exactly as the
// fleet session does when building its verdict.
func (r *replay) account(evs []core.OnlineEvent) {
	for _, e := range evs {
		if e.Kind != speclang.ViolationEnd {
			continue
		}
		t := r.tally[e.Rule]
		if t == nil {
			t = &tally{}
			r.tally[e.Rule] = t
		}
		t.violations++
		switch e.Class {
		case core.ClassReal:
			t.real++
		case core.ClassTransient:
			t.transient++
		case core.ClassNegligible:
			t.negligible++
		}
	}
}

// diffRules compares the rule lists of two verdicts by rule name,
// returning one RuleDiff per rule whose counted fields differ. Rules
// present on only one side (the spec changed shape) always diff.
func diffRules(archived, rechecked []wire.RuleVerdict) []RuleDiff {
	byName := make(map[string]wire.RuleVerdict, len(archived))
	for _, rv := range archived {
		byName[rv.Rule] = rv
	}
	var diffs []RuleDiff
	seen := make(map[string]bool, len(rechecked))
	for _, now := range rechecked {
		seen[now.Rule] = true
		was := byName[now.Rule] // zero value when the rule is new
		if sameRule(was, now) {
			continue
		}
		diffs = append(diffs, RuleDiff{
			Rule: now.Rule, Archived: was, Rechecked: now,
			Regression: worse(was, now),
		})
	}
	for _, was := range archived {
		if seen[was.Rule] {
			continue
		}
		// Rule dropped from the spec: only report it if it had found
		// anything — losing a clean rule changes nothing.
		if was.Violations == 0 && !was.Violated {
			continue
		}
		diffs = append(diffs, RuleDiff{
			Rule: was.Rule, Archived: was,
			Rechecked:  wire.RuleVerdict{Rule: was.Rule},
			Regression: false,
		})
	}
	return diffs
}

// sameRule compares the counted fields of two rule verdicts.
func sameRule(a, b wire.RuleVerdict) bool {
	return a.Violated == b.Violated &&
		a.Violations == b.Violations &&
		a.Real == b.Real &&
		a.Transient == b.Transient &&
		a.Negligible == b.Negligible
}

// worse reports whether now is a regression relative to was.
func worse(was, now wire.RuleVerdict) bool {
	if now.Violated != was.Violated {
		return now.Violated
	}
	if now.Violations != was.Violations {
		return now.Violations > was.Violations
	}
	return now.Real > was.Real
}

package recheck_test

import (
	"fmt"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
)

// benchLog synthesizes a bus capture directly (no plant simulation):
// steady following traffic with a mid-trace fault burst, mirroring the
// fleet ingest benchmark's traffic shape.
func benchLog(b *testing.B, ticks int) *can.Log {
	b.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		_ = bus.Set(sigdb.SigVelocity, 24)
		_ = bus.Set(sigdb.SigACCSetSpeed, 25)
		_ = bus.Set(sigdb.SigVehicleAhead, 1)
		_ = bus.Set(sigdb.SigTargetRange, 40)
		if tick >= ticks/3 && tick < ticks/2 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			b.Fatal(err)
		}
	}
	return bus.Log()
}

// BenchmarkRecheck measures archive replay throughput: an archived
// multi-session corpus rechecked against the strict spec, reported as
// frames/sec.
func BenchmarkRecheck(b *testing.B) {
	db := sigdb.Vehicle()
	log := benchLog(b, 3000)
	frames := log.Frames()
	for _, sessions := range []int{1, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			dir := b.TempDir()
			w, err := archive.OpenWriter(dir, archive.Options{})
			if err != nil {
				b.Fatal(err)
			}
			// Archive each session's frames in wire-sized runs, as the
			// fleet server would.
			const run = 256
			for s := 1; s <= sessions; s++ {
				vehicle := fmt.Sprintf("bench-%02d", s)
				for at := 0; at < len(frames); at += run {
					end := at + run
					if end > len(frames) {
						end = len(frames)
					}
					if err := w.ArchiveFrames(uint64(s), vehicle, frames[at:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			cat, err := archive.OpenCatalog(dir)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := rules.Strict()
			if err != nil {
				b.Fatal(err)
			}
			cfg := core.Config{Rules: rs, Triage: rules.DefaultTriage()}

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := recheck.Run(cat, db, cfg, recheck.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if want := uint64(sessions) * uint64(len(frames)); rep.FramesReplayed != want {
					b.Fatalf("replayed %d frames, want %d", rep.FramesReplayed, want)
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(sessions) * float64(len(frames))
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(total/secs, "frames/sec")
			}
		})
	}
}

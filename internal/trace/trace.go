// Package trace holds multi-rate signal traces: per-signal timestamped
// sample series recorded from the broadcast network (or from a vehicle
// data logger), plus the alignment transform that turns them into the
// fixed-step view a monitor evaluates over.
//
// A sample is an *update*: a frame carrying the signal arrived, even if
// the value is unchanged. Preserving updates (not just value changes) is
// what lets the monitor distinguish "the value is constant" from "the
// value is stale because its frame is slower", the multi-rate trap the
// paper describes in Section V.C.1.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
)

// Sample is one timestamped signal update.
type Sample struct {
	// T is the update time relative to trace start.
	T time.Duration
	// V is the physical value as decoded off the wire.
	V float64
}

// Series is the ordered update history of one signal.
type Series struct {
	// Name is the signal name.
	Name string
	// Samples holds the updates in non-decreasing time order.
	Samples []Sample
}

// Append records an update. Updates must arrive in non-decreasing time
// order.
func (s *Series) Append(t time.Duration, v float64) error {
	if n := len(s.Samples); n > 0 && t < s.Samples[n-1].T {
		return fmt.Errorf("trace: out-of-order sample for %q at %v after %v", s.Name, t, s.Samples[n-1].T)
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	return nil
}

// At returns the held (zero-order-hold) value at time t: the value of
// the latest sample with T <= t. ok is false before the first sample.
func (s *Series) At(t time.Duration) (v float64, ok bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.Samples[i-1].V, true
}

// Duration returns the time of the last sample, or zero when empty.
func (s *Series) Duration() time.Duration {
	if len(s.Samples) == 0 {
		return 0
	}
	return s.Samples[len(s.Samples)-1].T
}

// Trace is a set of named series recorded over a common timeline.
type Trace struct {
	names  []string
	series map[string]*Series
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{series: make(map[string]*Series)}
}

// Ensure returns the series for name, creating it if absent.
func (tr *Trace) Ensure(name string) *Series {
	if s, ok := tr.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	tr.series[name] = s
	tr.names = append(tr.names, name)
	return s
}

// Series returns the series for name.
func (tr *Trace) Series(name string) (*Series, bool) {
	s, ok := tr.series[name]
	return s, ok
}

// Names returns the signal names in insertion order.
func (tr *Trace) Names() []string {
	out := make([]string, len(tr.names))
	copy(out, tr.names)
	return out
}

// Duration returns the time of the last sample across all series.
func (tr *Trace) Duration() time.Duration {
	var max time.Duration
	for _, s := range tr.series {
		if d := s.Duration(); d > max {
			max = d
		}
	}
	return max
}

// FromCANLog decodes a CAN frame log into a trace using the signal
// database. This is the monitor's entire view of the system under test.
func FromCANLog(log *can.Log, db *sigdb.DB) (*Trace, error) {
	tr := New()
	// Pre-create series in database order for stable output, and keep a
	// dense index so the decode loop never touches the name map.
	names := db.SignalNames()
	series := make([]*Series, len(names))
	for i, name := range names {
		series[i] = tr.Ensure(name)
	}
	plan, err := db.CompilePlan(names)
	if err != nil {
		return nil, err
	}
	scratch := make([]float64, plan.Width())
	for _, f := range log.Frames() {
		dst, ok := plan.Dst(f.ID)
		if !ok {
			// Foreign traffic on the bus is expected; a passive monitor
			// ignores frames it has no definition for.
			continue
		}
		if _, err := plan.UnpackInto(f.ID, f.Data, scratch); err != nil {
			return nil, err
		}
		for _, di := range dst {
			if err := series[di].Append(f.Time, scratch[di]); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}

// Grid is the fixed-step view of a trace: for every signal, the held
// value at each step plus whether the signal was freshly updated within
// that step. Steps run from t=0 to the trace duration inclusive.
type Grid struct {
	// Period is the step size.
	Period time.Duration
	// Steps is the number of steps.
	Steps int

	names   []string
	idx     map[string]int
	values  [][]float64
	updated [][]bool
}

// Align samples the trace onto a fixed grid with zero-order hold.
// Steps where a signal has no sample yet hold NaN, which downstream
// evaluation treats as "not yet valid" (the warm-up problem from the
// paper's Section V.C.2).
func Align(tr *Trace, period time.Duration) (*Grid, error) {
	if period <= 0 {
		return nil, fmt.Errorf("trace: non-positive grid period %v", period)
	}
	dur := tr.Duration()
	steps := int(dur/period) + 1
	g := &Grid{
		Period:  period,
		Steps:   steps,
		idx:     make(map[string]int),
		values:  make([][]float64, 0, len(tr.names)),
		updated: make([][]bool, 0, len(tr.names)),
	}
	for _, name := range tr.Names() {
		s := tr.series[name]
		vals := make([]float64, steps)
		upd := make([]bool, steps)
		cur := math.NaN()
		si := 0
		for step := 0; step < steps; step++ {
			stepEnd := time.Duration(step) * period
			for si < len(s.Samples) && s.Samples[si].T <= stepEnd {
				cur = s.Samples[si].V
				upd[step] = true
				si++
			}
			vals[step] = cur
		}
		g.idx[name] = len(g.names)
		g.names = append(g.names, name)
		g.values = append(g.values, vals)
		g.updated = append(g.updated, upd)
	}
	return g, nil
}

// Names returns the signal names carried by the grid.
func (g *Grid) Names() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// Has reports whether the grid carries the named signal.
func (g *Grid) Has(name string) bool {
	_, ok := g.idx[name]
	return ok
}

// Values returns the held-value vector for a signal, one entry per step.
// The returned slice is shared with the grid and must not be modified.
func (g *Grid) Values(name string) ([]float64, bool) {
	i, ok := g.idx[name]
	if !ok {
		return nil, false
	}
	return g.values[i], true
}

// Updated returns the per-step freshness vector for a signal: true where
// at least one new sample arrived within the step.
func (g *Grid) Updated(name string) ([]bool, bool) {
	i, ok := g.idx[name]
	if !ok {
		return nil, false
	}
	return g.updated[i], true
}

// TimeAt returns the timestamp of step i.
func (g *Grid) TimeAt(i int) time.Duration {
	return time.Duration(i) * g.Period
}

// NumSteps returns the number of steps; with StepPeriod it lets the
// grid serve directly as a rule-evaluation source.
func (g *Grid) NumSteps() int { return g.Steps }

// StepPeriod returns the step size.
func (g *Grid) StepPeriod() time.Duration { return g.Period }

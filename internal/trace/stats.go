package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Clip returns a new trace containing only the samples with T in
// [from, to), with timestamps rebased so the clip starts at zero.
// Clipping is how an analyst extracts the neighbourhood of a violation
// from a long capture for closer inspection.
func (tr *Trace) Clip(from, to time.Duration) (*Trace, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: empty clip window [%v, %v)", from, to)
	}
	out := New()
	for _, name := range tr.Names() {
		src := tr.series[name]
		dst := out.Ensure(name)
		for _, smp := range src.Samples {
			if smp.T < from || smp.T >= to {
				continue
			}
			if err := dst.Append(smp.T-from, smp.V); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SeriesStats summarizes one signal over a trace.
type SeriesStats struct {
	// Samples is the number of updates.
	Samples int
	// Min, Max and Mean cover the finite samples only.
	Min, Max, Mean float64
	// NonFinite counts NaN and infinite samples — the exceptional
	// values robustness testing cares about.
	NonFinite int
	// MedianInterval is the median time between consecutive updates,
	// which recovers a signal's broadcast period from a capture.
	MedianInterval time.Duration
}

// Stats summarizes a series. An empty series yields the zero value.
func (s *Series) Stats() SeriesStats {
	st := SeriesStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	finite := 0
	for _, smp := range s.Samples {
		st.Samples++
		if math.IsNaN(smp.V) || math.IsInf(smp.V, 0) {
			st.NonFinite++
			continue
		}
		finite++
		sum += smp.V
		if smp.V < st.Min {
			st.Min = smp.V
		}
		if smp.V > st.Max {
			st.Max = smp.V
		}
	}
	if finite > 0 {
		st.Mean = sum / float64(finite)
	} else {
		st.Min, st.Max = 0, 0
	}
	if len(s.Samples) > 1 {
		gaps := make([]time.Duration, 0, len(s.Samples)-1)
		for i := 1; i < len(s.Samples); i++ {
			gaps = append(gaps, s.Samples[i].T-s.Samples[i-1].T)
		}
		sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
		st.MedianInterval = gaps[len(gaps)/2]
	}
	return st
}

package trace

import (
	"math"
	"testing"
	"time"
)

func TestClip(t *testing.T) {
	tr := New()
	s := tr.Ensure("x")
	for i := 0; i < 10; i++ {
		_ = s.Append(ms(10*i), float64(i))
	}
	clip, err := tr.Clip(ms(30), ms(70))
	if err != nil {
		t.Fatalf("Clip: %v", err)
	}
	cs, ok := clip.Series("x")
	if !ok {
		t.Fatal("missing series in clip")
	}
	if len(cs.Samples) != 4 {
		t.Fatalf("clip has %d samples, want 4 (30,40,50,60)", len(cs.Samples))
	}
	if cs.Samples[0].T != 0 || cs.Samples[0].V != 3 {
		t.Errorf("first sample = %+v, want rebased t=0 v=3", cs.Samples[0])
	}
	if cs.Samples[3].T != ms(30) || cs.Samples[3].V != 6 {
		t.Errorf("last sample = %+v", cs.Samples[3])
	}
}

func TestClipEmptyWindow(t *testing.T) {
	if _, err := New().Clip(ms(10), ms(10)); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := New().Clip(ms(20), ms(10)); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	vals := []float64{3, 1, 4, 1, 5, math.NaN(), math.Inf(1), 9}
	for i, v := range vals {
		_ = s.Append(ms(10*i), v)
	}
	st := s.Stats()
	if st.Samples != 8 || st.NonFinite != 2 {
		t.Errorf("samples=%d nonfinite=%d", st.Samples, st.NonFinite)
	}
	if st.Min != 1 || st.Max != 9 {
		t.Errorf("min=%v max=%v", st.Min, st.Max)
	}
	if want := (3.0 + 1 + 4 + 1 + 5 + 9) / 6; math.Abs(st.Mean-want) > 1e-12 {
		t.Errorf("mean=%v want %v", st.Mean, want)
	}
	if st.MedianInterval != ms(10) {
		t.Errorf("median interval = %v, want 10ms", st.MedianInterval)
	}
}

func TestSeriesStatsRecoverPeriodWithJitter(t *testing.T) {
	var s Series
	at := time.Duration(0)
	for i := 0; i < 100; i++ {
		gap := ms(40)
		if i%10 == 3 {
			gap = ms(50) // occasional slip
		}
		at += gap
		_ = s.Append(at, 1)
	}
	if got := s.Stats().MedianInterval; got != ms(40) {
		t.Errorf("median interval = %v, want the 40ms nominal period", got)
	}
}

func TestSeriesStatsEmptyAndAllNaN(t *testing.T) {
	var s Series
	st := s.Stats()
	if st.Samples != 0 || st.Min != 0 || st.Max != 0 || st.MedianInterval != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	nan := math.NaN()
	_ = s.Append(0, nan)
	_ = s.Append(ms(10), nan)
	st = s.Stats()
	if st.NonFinite != 2 || st.Min != 0 || st.Max != 0 || st.Mean != 0 {
		t.Errorf("all-NaN stats = %+v", st)
	}
}

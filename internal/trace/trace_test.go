package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/sigdb"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSeriesAppendOrdering(t *testing.T) {
	var s Series
	if err := s.Append(ms(10), 1); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Append(ms(10), 2); err != nil {
		t.Fatalf("append equal time: %v", err)
	}
	if err := s.Append(ms(5), 3); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}

func TestSeriesAtHold(t *testing.T) {
	var s Series
	_ = s.Append(ms(10), 1)
	_ = s.Append(ms(30), 2)
	tests := []struct {
		at     time.Duration
		want   float64
		wantOK bool
	}{
		{ms(0), 0, false},
		{ms(9), 0, false},
		{ms(10), 1, true},
		{ms(29), 1, true},
		{ms(30), 2, true},
		{ms(1000), 2, true},
	}
	for _, tt := range tests {
		got, ok := s.At(tt.at)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("At(%v) = %v,%v, want %v,%v", tt.at, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestTraceEnsureAndNames(t *testing.T) {
	tr := New()
	a := tr.Ensure("a")
	b := tr.Ensure("b")
	if tr.Ensure("a") != a {
		t.Error("Ensure returned a different series for existing name")
	}
	_ = b
	got := tr.Names()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v, want [a b]", got)
	}
	if _, ok := tr.Series("c"); ok {
		t.Error("Series(c) found nonexistent series")
	}
}

func TestTraceDuration(t *testing.T) {
	tr := New()
	_ = tr.Ensure("a").Append(ms(10), 1)
	_ = tr.Ensure("b").Append(ms(50), 1)
	if tr.Duration() != ms(50) {
		t.Errorf("Duration = %v, want 50ms", tr.Duration())
	}
}

func busLog(t *testing.T, ticks int, set func(tick int, b *can.Bus)) *can.Log {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	b := can.NewBus(db, sched)
	for tick := 0; tick < ticks; tick++ {
		if set != nil {
			set(tick, b)
		}
		if err := b.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	return b.Log()
}

func TestFromCANLog(t *testing.T) {
	log := busLog(t, 8, func(tick int, b *can.Bus) {
		_ = b.Set(sigdb.SigVelocity, float64(tick))
	})
	db := sigdb.Vehicle()
	tr, err := FromCANLog(log, db)
	if err != nil {
		t.Fatalf("FromCANLog: %v", err)
	}
	vel, ok := tr.Series(sigdb.SigVelocity)
	if !ok {
		t.Fatal("missing Velocity series")
	}
	if len(vel.Samples) != 8 {
		t.Fatalf("Velocity has %d samples, want 8", len(vel.Samples))
	}
	for i, smp := range vel.Samples {
		if smp.V != float64(i) {
			t.Errorf("sample %d = %v, want %v", i, smp.V, float64(i))
		}
	}
	slow, ok := tr.Series(sigdb.SigACCSetSpeed)
	if !ok {
		t.Fatal("missing ACCSetSpeed series")
	}
	if len(slow.Samples) != 2 {
		t.Errorf("slow signal has %d samples over 8 ticks, want 2", len(slow.Samples))
	}
}

func TestFromCANLogIgnoresForeignFrames(t *testing.T) {
	var log can.Log
	_ = log.Append(can.Frame{Time: 0, ID: 0x7FF})
	tr, err := FromCANLog(&log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("FromCANLog: %v", err)
	}
	for _, name := range tr.Names() {
		s, _ := tr.Series(name)
		if len(s.Samples) != 0 {
			t.Errorf("foreign frame produced samples for %q", name)
		}
	}
}

func TestAlignHoldAndUpdated(t *testing.T) {
	tr := New()
	s := tr.Ensure("x")
	_ = s.Append(ms(0), 1)
	_ = s.Append(ms(40), 2)
	g, err := Align(tr, ms(10))
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	if g.Steps != 5 {
		t.Fatalf("Steps = %d, want 5", g.Steps)
	}
	vals, _ := g.Values("x")
	want := []float64{1, 1, 1, 1, 2}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("step %d value = %v, want %v", i, vals[i], want[i])
		}
	}
	upd, _ := g.Updated("x")
	wantUpd := []bool{true, false, false, false, true}
	for i := range wantUpd {
		if upd[i] != wantUpd[i] {
			t.Errorf("step %d updated = %v, want %v", i, upd[i], wantUpd[i])
		}
	}
}

func TestAlignNaNBeforeFirstSample(t *testing.T) {
	tr := New()
	s := tr.Ensure("x")
	_ = s.Append(ms(20), 5)
	g, err := Align(tr, ms(10))
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	vals, _ := g.Values("x")
	if !math.IsNaN(vals[0]) || !math.IsNaN(vals[1]) {
		t.Errorf("pre-first-sample values = %v, want NaN", vals[:2])
	}
	if vals[2] != 5 {
		t.Errorf("step 2 = %v, want 5", vals[2])
	}
}

func TestAlignRejectsBadPeriod(t *testing.T) {
	if _, err := Align(New(), 0); err == nil {
		t.Fatal("Align with zero period accepted")
	}
}

func TestGridAccessors(t *testing.T) {
	tr := New()
	_ = tr.Ensure("x").Append(0, 1)
	g, err := Align(tr, ms(10))
	if err != nil {
		t.Fatalf("Align: %v", err)
	}
	if !g.Has("x") || g.Has("y") {
		t.Error("Has is wrong")
	}
	if _, ok := g.Values("y"); ok {
		t.Error("Values for unknown signal returned ok")
	}
	if _, ok := g.Updated("y"); ok {
		t.Error("Updated for unknown signal returned ok")
	}
	if g.TimeAt(3) != ms(30) {
		t.Errorf("TimeAt(3) = %v, want 30ms", g.TimeAt(3))
	}
	if got := g.Names(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Names = %v, want [x]", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := New()
	x := tr.Ensure("x")
	_ = x.Append(ms(0), 1.5)
	_ = x.Append(ms(10), math.NaN())
	_ = x.Append(ms(20), math.Inf(1))
	_ = x.Append(ms(30), math.Inf(-1))
	y := tr.Ensure("y")
	_ = y.Append(ms(5), -2000)

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	gx, ok := got.Series("x")
	if !ok || len(gx.Samples) != 4 {
		t.Fatalf("x round trip = %+v", gx)
	}
	if gx.Samples[0].V != 1.5 {
		t.Errorf("sample 0 = %v", gx.Samples[0].V)
	}
	if !math.IsNaN(gx.Samples[1].V) {
		t.Errorf("sample 1 = %v, want NaN", gx.Samples[1].V)
	}
	if !math.IsInf(gx.Samples[2].V, 1) || !math.IsInf(gx.Samples[3].V, -1) {
		t.Errorf("infinities did not round trip: %v %v", gx.Samples[2].V, gx.Samples[3].V)
	}
	gy, ok := got.Series("y")
	if !ok || len(gy.Samples) != 1 || gy.Samples[0].V != -2000 {
		t.Fatalf("y round trip = %+v", gy)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "a,b,c\n"},
		{"bad time", "time_ns,signal,value\nxx,a,1\n"},
		{"bad value", "time_ns,signal,value\n0,a,zz\n"},
		{"out of order", "time_ns,signal,value\n10,a,1\n0,a,2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(bytes.NewBufferString(tt.in)); err == nil {
				t.Errorf("ReadCSV(%q) succeeded, want error", tt.in)
			}
		})
	}
}

// TestCSVRoundTripQuick property-tests that arbitrary float64 values,
// including special values, survive a CSV round trip.
func TestCSVRoundTripQuick(t *testing.T) {
	f := func(vs []float64) bool {
		tr := New()
		s := tr.Ensure("sig")
		for i, v := range vs {
			if err := s.Append(time.Duration(i)*time.Millisecond, v); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(vs) == 0 {
			return len(got.Names()) == 0
		}
		gs, ok := got.Series("sig")
		if !ok || len(gs.Samples) != len(vs) {
			return false
		}
		for i, v := range vs {
			g := gs.Samples[i].V
			if g != v && !(math.IsNaN(g) && math.IsNaN(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAlignHoldMatchesSeriesAtQuick property-tests that grid alignment
// agrees with the series' own zero-order-hold lookup at every step.
func TestAlignHoldMatchesSeriesAtQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		tr := New()
		s := tr.Ensure("x")
		tt := time.Duration(0)
		for _, r := range raw {
			tt += time.Duration(r%37) * time.Millisecond
			if err := s.Append(tt, float64(r)); err != nil {
				return false
			}
		}
		g, err := Align(tr, 10*time.Millisecond)
		if err != nil {
			return false
		}
		vals, _ := g.Values("x")
		for step := 0; step < g.Steps; step++ {
			want, ok := s.At(g.TimeAt(step))
			got := vals[step]
			if !ok {
				if !math.IsNaN(got) {
					return false
				}
				continue
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

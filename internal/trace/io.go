package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// WriteCSV serializes the trace in "long" form: one row per update with
// columns time_ns, signal, value. Long form preserves the multi-rate
// structure of the recording exactly; NaN and infinities are written in
// Go's %g notation.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"time_ns", "signal", "value"}); err != nil {
		return err
	}
	type row struct {
		t    time.Duration
		name string
		v    float64
		seq  int
	}
	var rows []row
	seq := 0
	for _, name := range tr.Names() {
		s := tr.series[name]
		for _, smp := range s.Samples {
			rows = append(rows, row{t: smp.T, name: name, v: smp.V, seq: seq})
			seq++
		}
	}
	// Global time order, stable within a timestamp by original order.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	for _, r := range rows {
		rec := []string{
			strconv.FormatInt(int64(r.t), 10),
			r.name,
			formatValue(r.v),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	default:
		return strconv.ParseFloat(s, 64)
	}
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read CSV header: %w", err)
	}
	if header[0] != "time_ns" || header[1] != "signal" || header[2] != "value" {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	tr := New()
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read CSV: %w", err)
		}
		line++
		ns, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time %q: %w", line, rec[0], err)
		}
		v, err := parseValue(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad value %q: %w", line, rec[2], err)
		}
		if err := tr.Ensure(rec[1]).Append(time.Duration(ns), v); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
	}
}

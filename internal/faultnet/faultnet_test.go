package faultnet

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipe builds a faulted pipe: bytes written into the returned *Conn
// come out of the peer, mangled per the schedule.
func pipe(faults []Fault) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, faults), b
}

// push writes p through c in chunks of size chunk (everything at once
// when chunk <= 0), then closes, while the peer collects what arrives.
func push(t *testing.T, c *Conn, peer net.Conn, p []byte, chunk int) []byte {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rest := p
		for len(rest) > 0 {
			n := len(rest)
			if chunk > 0 && chunk < n {
				n = chunk
			}
			if _, err := c.Write(rest[:n]); err != nil {
				break
			}
			rest = rest[n:]
		}
		c.Close()
	}()
	got, _ := io.ReadAll(peer)
	wg.Wait()
	return got
}

func seq(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)
	}
	return p
}

func TestCleanPassThrough(t *testing.T) {
	c, peer := pipe(nil)
	in := seq(1000)
	if got := push(t, c, peer, in, 7); !bytes.Equal(got, in) {
		t.Fatalf("clean wrapper altered the stream")
	}
}

func TestDrop(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Drop, Dir: Send, Offset: 10, Len: 5}})
	in := seq(100)
	want := append(append([]byte{}, in[:10]...), in[15:]...)
	if got := push(t, c, peer, in, 3); !bytes.Equal(got, want) {
		t.Fatalf("drop: got %d bytes %x, want %d bytes", len(got), got[:min(len(got), 20)], len(want))
	}
	if c.Applied() != 1 {
		t.Fatalf("applied = %d, want 1", c.Applied())
	}
}

func TestDuplicate(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Duplicate, Dir: Send, Offset: 4, Len: 3}})
	in := seq(20)
	var want []byte
	want = append(want, in[:4]...)
	for _, b := range in[4:7] {
		want = append(want, b, b)
	}
	want = append(want, in[7:]...)
	if got := push(t, c, peer, in, 1); !bytes.Equal(got, want) {
		t.Fatalf("duplicate: got %x want %x", got, want)
	}
}

func TestCorrupt(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Corrupt, Dir: Send, Offset: 2, Len: 4, Mask: 0xFF}})
	in := seq(10)
	want := append([]byte{}, in...)
	for i := 2; i < 6; i++ {
		want[i] ^= 0xFF
	}
	if got := push(t, c, peer, in, 0); !bytes.Equal(got, want) {
		t.Fatalf("corrupt: got %x want %x", got, want)
	}
}

func TestCorruptZeroMaskStillFlips(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Corrupt, Dir: Send, Offset: 0, Len: 1}})
	got := push(t, c, peer, []byte{0x00}, 0)
	if len(got) != 1 || got[0] == 0x00 {
		t.Fatalf("zero-mask corrupt was a no-op: %x", got)
	}
}

func TestReorderSwapsSpans(t *testing.T) {
	// Hold bytes [5,8) until 3 more bytes pass: ...45[567]89A... ->
	// bytes 8,9,10 are emitted before 5,6,7.
	c, peer := pipe([]Fault{{Op: Reorder, Dir: Send, Offset: 5, Len: 3}})
	in := seq(16)
	var want []byte
	want = append(want, in[:5]...)
	want = append(want, in[8:11]...)
	want = append(want, in[5:8]...)
	want = append(want, in[11:]...)
	if got := push(t, c, peer, in, 2); !bytes.Equal(got, want) {
		t.Fatalf("reorder: got %x want %x", got, want)
	}
}

func TestReorderFlushedOnClose(t *testing.T) {
	// The held span's release point never arrives; Close must flush it
	// so no bytes are silently lost.
	c, peer := pipe([]Fault{{Op: Reorder, Dir: Send, Offset: 2, Len: 4}})
	in := seq(6)
	want := append(append([]byte{}, in[:2]...), in[2:6]...)
	if got := push(t, c, peer, in, 0); !bytes.Equal(got, want) {
		t.Fatalf("reorder flush: got %x want %x", got, want)
	}
}

func TestTruncateClosesAndDiscards(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Truncate, Dir: Send, Offset: 8}})
	in := seq(64)
	got := push(t, c, peer, in, 5)
	if !bytes.Equal(got, in[:8]) {
		t.Fatalf("truncate: got %x want %x", got, in[:8])
	}
}

func TestDisconnectClosesConn(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Disconnect, Dir: Send, Offset: 4}})
	in := seq(32)
	got := push(t, c, peer, in, 2)
	if !bytes.Equal(got, in[:4]) {
		t.Fatalf("disconnect: got %x want %x", got, in[:4])
	}
	// Subsequent writes must fail: the conn is gone.
	if _, err := c.Write([]byte{1}); err == nil {
		t.Fatalf("write after disconnect succeeded")
	}
}

func TestStallDelays(t *testing.T) {
	c, peer := pipe([]Fault{{Op: Stall, Dir: Send, Offset: 3, Wait: 30 * time.Millisecond}})
	in := seq(6)
	start := time.Now()
	got := push(t, c, peer, in, 0)
	if !bytes.Equal(got, in) {
		t.Fatalf("stall altered bytes: %x", got)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall did not delay: %v", d)
	}
}

func TestRecvDirection(t *testing.T) {
	a, b := net.Pipe()
	c := Wrap(a, []Fault{{Op: Drop, Dir: Recv, Offset: 2, Len: 2}})
	in := seq(8)
	go func() {
		b.Write(in)
		b.Close()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := append(append([]byte{}, in[:2]...), in[4:]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("recv drop: got %x want %x", got, want)
	}
}

func TestRecvReorderFlushedOnEOF(t *testing.T) {
	a, b := net.Pipe()
	c := Wrap(a, []Fault{{Op: Reorder, Dir: Recv, Offset: 1, Len: 3}})
	in := seq(4)
	go func() {
		b.Write(in)
		b.Close()
	}()
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := append(append([]byte{}, in[:1]...), in[1:4]...)
	if !bytes.Equal(got, want) {
		t.Fatalf("recv reorder flush: got %x want %x", got, want)
	}
}

// TestChunkingIndependence is the core determinism property: the same
// schedule over the same pristine stream yields the same mangled bytes
// regardless of how writes are chunked.
func TestChunkingIndependence(t *testing.T) {
	faults := []Fault{
		{Op: Corrupt, Dir: Send, Offset: 7, Len: 9, Mask: 0x0F},
		{Op: Drop, Dir: Send, Offset: 40, Len: 11},
		{Op: Duplicate, Dir: Send, Offset: 100, Len: 5},
		{Op: Reorder, Dir: Send, Offset: 130, Len: 8},
	}
	in := seq(300)
	var ref []byte
	for i, chunk := range []int{0, 1, 3, 17, 64} {
		c, peer := pipe(append([]Fault{}, faults...))
		got := push(t, c, peer, in, chunk)
		if i == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("chunk=%d diverged from reference", chunk)
		}
	}
}

func TestPlanDeterministicAndCleanTail(t *testing.T) {
	a := Plan(42, 3, 4096)
	b := Plan(42, 3, 4096)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("plan length: %d/%d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) == 0 {
			t.Fatalf("dial %d has no faults", i)
		}
		if len(a[i]) != len(b[i]) {
			t.Fatalf("plan not deterministic at dial %d", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("plan not deterministic: %v vs %v", a[i][j], b[i][j])
			}
		}
	}
	if c := Plan(43, 3, 4096); len(c[0]) > 0 && c[0][0] == a[0][0] && len(c[1]) == len(a[1]) && len(c[2]) == len(a[2]) {
		// Different seeds may rarely coincide on one field; require the
		// full first fault to differ OR schedule shapes to differ.
		same := true
		for i := range c {
			if len(c[i]) != len(a[i]) {
				same = false
				break
			}
			for j := range c[i] {
				if c[i][j] != a[i][j] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("seeds 42 and 43 produced identical plans")
		}
	}
}

func TestDialerSchedulesThenClean(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				io.Copy(io.Discard, conn)
				conn.Close()
			}(conn)
		}
	}()

	d := &Dialer{Schedules: [][]Fault{
		{{Op: Disconnect, Dir: Send, Offset: 4}},
	}}
	// Dial 0: faulted, dies after 4 bytes.
	c0, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c0.Write(seq(16))
	if _, err := c0.Write([]byte{1}); err == nil {
		t.Fatalf("faulted dial survived its disconnect")
	}
	// Dial 1: past the schedule, clean.
	c1, err := d.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := c1.Write(seq(128)); err != nil {
			t.Fatalf("clean dial failed at write %d: %v", i, err)
		}
	}
	c1.Close()
	if d.Dials() != 2 {
		t.Fatalf("dials = %d, want 2", d.Dials())
	}
	if d.Applied() != 1 {
		t.Fatalf("applied = %d, want 1", d.Applied())
	}
}

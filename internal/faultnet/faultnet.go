// Package faultnet is a deterministic fault injector for byte streams:
// it wraps a net.Conn and applies a declarative, offset-addressed fault
// schedule to the bytes flowing through it — dropping, duplicating,
// reordering, corrupting, truncating, stalling or disconnecting — so
// tests can subject any protocol in the repository to the transport
// chaos a real vehicle uplink suffers, reproducibly.
//
// The design follows internal/inject: faults are plain data, schedules
// are derived from a seed, and the same schedule always produces the
// same mangled stream for the same pristine input. Offsets address the
// pristine stream (the bytes the wrapped side wrote or the peer sent),
// so a schedule's effect is independent of how the stream is chunked
// into Write and Read calls.
//
// Wrap mangles a single connection; Dialer hands out one schedule per
// dial attempt and clean connections once the schedules run out, which
// gives retrying clients the eventual-delivery guarantee chaos tests
// rely on.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Op enumerates the stream faults.
type Op uint8

const (
	// Drop deletes the faulted span from the stream.
	Drop Op = iota + 1
	// Duplicate emits every byte of the faulted span twice.
	Duplicate
	// Reorder holds the faulted span back and releases it after the
	// same number of following bytes has passed (a span-for-span swap).
	Reorder
	// Corrupt XORs the faulted span with Mask.
	Corrupt
	// Truncate discards the stream from Offset onward and then closes
	// the connection: the tail is silently lost.
	Truncate
	// Stall pauses the stream for Wait when it reaches Offset.
	Stall
	// Disconnect closes the connection when the stream reaches Offset.
	Disconnect
)

// String names the op.
func (op Op) String() string {
	switch op {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Stall:
		return "stall"
	case Disconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Dir selects which half of the connection a fault applies to, from the
// wrapped side's point of view.
type Dir uint8

const (
	// Send faults the bytes written through the wrapper.
	Send Dir = iota + 1
	// Recv faults the bytes read through the wrapper.
	Recv
)

// String names the direction.
func (d Dir) String() string {
	switch d {
	case Send:
		return "send"
	case Recv:
		return "recv"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Fault is one scheduled fault: at byte Offset of the pristine stream
// in direction Dir, apply Op to the next Len bytes (span ops) or to the
// stream position itself (Truncate, Stall, Disconnect).
type Fault struct {
	Op     Op
	Dir    Dir
	Offset int64
	// Len is the span length for Drop, Duplicate, Reorder and Corrupt;
	// ignored by the point ops.
	Len int
	// Mask is the Corrupt XOR pattern; zero selects 0xA5 so a Corrupt
	// fault never degenerates into a no-op.
	Mask byte
	// Wait is the Stall pause.
	Wait time.Duration
}

func (f Fault) String() string {
	return fmt.Sprintf("%s/%s@%d+%d", f.Dir, f.Op, f.Offset, f.Len)
}

// DefaultCorruptMask is the XOR pattern a Corrupt fault applies when
// its Mask is zero, chosen so corruption never degenerates into a
// no-op.
const DefaultCorruptMask byte = 0xA5

// CorruptSpan applies the Corrupt transform to b[off:off+n] in place:
// each byte is XORed with mask, zero selecting DefaultCorruptMask. It
// lets file-format tests (the archive's torn-segment suite) mangle
// stored bytes exactly the way the transport chaos suite mangles
// in-flight ones. Spans outside b are clipped.
func CorruptSpan(b []byte, off, n int, mask byte) {
	if mask == 0 {
		mask = DefaultCorruptMask
	}
	for i := off; i < off+n && i < len(b); i++ {
		if i < 0 {
			continue
		}
		b[i] ^= mask
	}
}

// span reports whether the op covers a byte range (as opposed to a
// point event).
func (f Fault) span() bool {
	switch f.Op {
	case Drop, Duplicate, Reorder, Corrupt:
		return true
	}
	return false
}

// Conn is a net.Conn with a fault schedule applied to both directions.
type Conn struct {
	net.Conn
	send, recv lane
	closed     atomic.Bool
	applied    atomic.Int64
}

// lane is one direction's fault state. pos counts pristine bytes
// consumed, which is the coordinate system fault offsets use; held
// carries a reordered span until its release point passes.
type lane struct {
	mu      sync.Mutex
	faults  []Fault // sorted by Offset, not overlapping
	pos     int64
	held    []byte
	release int64
	kill    bool   // truncate hit: discard everything onward, then close
	pending []byte // recv only: transformed bytes not yet delivered
}

// Wrap applies a fault schedule to conn. Faults must not overlap within
// a direction; they are sorted by offset here so schedules can be
// written in any order.
func Wrap(conn net.Conn, faults []Fault) *Conn {
	c := &Conn{Conn: conn}
	for _, f := range faults {
		switch f.Dir {
		case Recv:
			c.recv.faults = append(c.recv.faults, f)
		default:
			c.send.faults = append(c.send.faults, f)
		}
	}
	sortFaults(c.send.faults)
	sortFaults(c.recv.faults)
	return c
}

func sortFaults(fs []Fault) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Offset < fs[j-1].Offset; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// Applied reports how many faults have triggered so far, so tests can
// assert a schedule actually exercised the stream.
func (c *Conn) Applied() int { return int(c.applied.Load()) }

// Write mangles p per the send schedule and forwards the result. It
// reports the full length as written even when bytes were dropped: from
// the caller's perspective the transport accepted them.
func (c *Conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	out, closeAfter := c.send.transform(c, p)
	if len(out) > 0 {
		if _, err := c.Conn.Write(out); err != nil {
			return 0, err
		}
	}
	if closeAfter {
		c.close()
		return len(p), nil
	}
	return len(p), nil
}

// Read delivers the mangled inbound stream.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		c.recv.mu.Lock()
		if len(c.recv.pending) > 0 {
			n := copy(p, c.recv.pending)
			c.recv.pending = c.recv.pending[n:]
			c.recv.mu.Unlock()
			return n, nil
		}
		c.recv.mu.Unlock()

		buf := make([]byte, 32<<10)
		n, err := c.Conn.Read(buf)
		if n > 0 {
			out, closeAfter := c.recv.transform(c, buf[:n])
			c.recv.mu.Lock()
			c.recv.pending = append(c.recv.pending, out...)
			c.recv.mu.Unlock()
			if closeAfter {
				c.close()
			}
		}
		if err != nil {
			// Flush a reorder hold so a stream that ends mid-swap still
			// delivers the held bytes before the error.
			c.recv.mu.Lock()
			c.recv.flushHeldLocked()
			has := len(c.recv.pending) > 0
			c.recv.mu.Unlock()
			if has {
				continue
			}
			return 0, err
		}
	}
}

// Close flushes any held reorder span on the send side and closes the
// underlying connection.
func (c *Conn) Close() error {
	c.send.mu.Lock()
	held := c.send.held
	c.send.held = nil
	kill := c.send.kill
	c.send.mu.Unlock()
	if len(held) > 0 && !kill && !c.closed.Load() {
		c.Conn.Write(held)
	}
	return c.close()
}

func (c *Conn) close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.Conn.Close()
}

// flushHeldLocked moves a held reorder span into pending (recv lane).
func (l *lane) flushHeldLocked() {
	if len(l.held) > 0 {
		l.pending = append(l.pending, l.held...)
		l.held = nil
	}
}

// transform applies the lane's schedule to the pristine bytes p and
// returns the mangled output plus whether the connection must close
// afterwards (Truncate/Disconnect).
func (l *lane) transform(c *Conn, p []byte) (out []byte, closeAfter bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(p) > 0 {
		if l.kill {
			l.pos += int64(len(p))
			return out, true
		}
		// Release a reordered span once its swap window has passed.
		if l.held != nil && l.pos >= l.release {
			out = append(out, l.held...)
			l.held = nil
		}
		if len(l.faults) == 0 {
			// Clean tail; clamp to a pending reorder release point so
			// the top-of-loop flush fires at the exact byte regardless
			// of write chunking.
			n := len(p)
			if l.held != nil && l.pos+int64(n) > l.release {
				n = int(l.release - l.pos)
			}
			out = append(out, p[:n]...)
			l.pos += int64(n)
			p = p[n:]
			continue
		}
		f := l.faults[0]
		if l.pos < f.Offset {
			// Clean run up to the next fault (or reorder release).
			n := min(len(p), int(f.Offset-l.pos))
			if l.held != nil && l.pos+int64(n) > l.release {
				n = int(l.release - l.pos)
			}
			out = append(out, p[:n]...)
			l.pos += int64(n)
			p = p[n:]
			continue
		}
		if !f.span() {
			c.applied.Add(1)
			l.faults = l.faults[1:]
			switch f.Op {
			case Stall:
				// Pause with the lock held: the stream is a single
				// sequence and must not advance during the stall.
				time.Sleep(f.Wait)
			case Disconnect:
				l.kill = true
			case Truncate:
				l.kill = true
			}
			continue
		}
		// Inside a span fault.
		end := f.Offset + int64(f.Len)
		n := min(len(p), int(end-l.pos))
		seg := p[:n]
		switch f.Op {
		case Drop:
			// omitted
		case Duplicate:
			// Byte-wise doubling keeps the output independent of how
			// the span is split across Write calls.
			for _, b := range seg {
				out = append(out, b, b)
			}
		case Corrupt:
			mask := f.Mask
			if mask == 0 {
				mask = DefaultCorruptMask
			}
			for _, b := range seg {
				out = append(out, b^mask)
			}
		case Reorder:
			l.held = append(l.held, seg...)
			l.release = end + int64(f.Len)
		}
		l.pos += int64(n)
		p = p[n:]
		if l.pos >= end {
			c.applied.Add(1)
			l.faults = l.faults[1:]
		}
	}
	if l.held != nil && l.pos >= l.release {
		out = append(out, l.held...)
		l.held = nil
	}
	return out, l.kill
}

// Dialer hands out faulty connections per dial attempt: the i-th dial
// is wrapped with Schedules[i], and dials past the end of the schedule
// are clean. A retrying client therefore always reaches a clean link
// eventually — the chaos tests' eventual-delivery precondition.
type Dialer struct {
	// Schedules holds one fault schedule per dial, in dial order.
	Schedules [][]Fault
	// Base opens the underlying connection; net.Dial("tcp", addr) when
	// nil.
	Base func(addr string) (net.Conn, error)

	mu    sync.Mutex
	dials int
	conns []*Conn
}

// Dial opens the next connection in the schedule.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	base := d.Base
	if base == nil {
		base = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := base(addr)
	if err != nil {
		d.mu.Lock()
		d.dials++
		d.mu.Unlock()
		return nil, err
	}
	d.mu.Lock()
	i := d.dials
	d.dials++
	var faults []Fault
	if i < len(d.Schedules) {
		faults = d.Schedules[i]
	}
	fc := Wrap(conn, faults)
	d.conns = append(d.conns, fc)
	d.mu.Unlock()
	return fc, nil
}

// Dials reports how many connections were requested.
func (d *Dialer) Dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

// Applied sums the faults triggered across every connection.
func (d *Dialer) Applied() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.conns {
		n += c.Applied()
	}
	return n
}

// Plan derives a deterministic per-dial fault schedule from seed:
// attempts faulty connections, each carrying one to three faults with
// offsets inside window bytes, followed by clean dials forever. Every
// op and both directions are drawn from the seeded generator, so a
// sweep over seeds covers the whole fault space.
func Plan(seed int64, attempts int, window int64) [][]Fault {
	rng := rand.New(rand.NewSource(seed))
	ops := []Op{Drop, Duplicate, Reorder, Corrupt, Truncate, Stall, Disconnect}
	plan := make([][]Fault, attempts)
	for i := range plan {
		n := 1 + rng.Intn(3)
		var cursor int64
		for j := 0; j < n; j++ {
			// March offsets forward so faults within one connection
			// never overlap.
			cursor += 1 + rng.Int63n(max64(window/int64(n), 16))
			f := Fault{
				Op:     ops[rng.Intn(len(ops))],
				Dir:    Dir(1 + rng.Intn(2)),
				Offset: cursor,
				Len:    1 + rng.Intn(64),
				Mask:   byte(rng.Intn(256)),
				Wait:   time.Duration(rng.Intn(10)) * time.Millisecond,
			}
			plan[i] = append(plan[i], f)
			cursor += int64(f.Len)
			// Truncate and Disconnect end the connection; later faults
			// on this dial would never fire.
			if f.Op == Truncate || f.Op == Disconnect {
				break
			}
		}
	}
	return plan
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

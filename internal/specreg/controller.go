package specreg

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cpsmon/internal/obs"
)

// Phase is where a rollout stands. The zero value is PhaseIdle.
type Phase int

const (
	// PhaseIdle: no rollout in flight.
	PhaseIdle Phase = iota
	// PhaseGating: the candidate is being re-checked offline against
	// archived history.
	PhaseGating
	// PhaseGateFailed: the offline gate refused the candidate; the spec
	// stays stored, nothing reached the fleet.
	PhaseGateFailed
	// PhaseShadowing: the fleet evaluates the candidate next to the
	// active spec on live traffic; candidate verdicts are never
	// delivered.
	PhaseShadowing
	// PhasePromoted: the candidate became the active spec under a new
	// epoch.
	PhasePromoted
	// PhaseRolledBack: the candidate was withdrawn (by threshold or by
	// hand) with zero candidate verdicts delivered.
	PhaseRolledBack
)

// String names the phase as status displays show it.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseGating:
		return "gating"
	case PhaseGateFailed:
		return "gate-failed"
	case PhaseShadowing:
		return "shadowing"
	case PhasePromoted:
		return "promoted"
	case PhaseRolledBack:
		return "rolled-back"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// ShadowStats mirrors the fleet server's shadow-round snapshot.
// specreg is arch-pinned below the fleet (it must stay linkable from
// offline tooling), so the fleet arrives behind the Fleet interface
// and the daemon adapts the server's own stats type to this one.
type ShadowStats struct {
	// Hash is the candidate under evaluation; Promoted whether the
	// round already promoted (Epoch then carries the new epoch).
	Hash     string
	Promoted bool
	Epoch    uint64
	// Sessions counts sessions currently dual-evaluating. Batches and
	// DivergentBatches count shadow-compared batches fleet-wide;
	// Divergences sums the per-rule event-count deltas; Errors counts
	// candidate evaluation failures.
	Sessions                               int64
	Batches, DivergentBatches, Divergences uint64
	Errors                                 uint64
}

// Fleet is the controller's view of a running fleet server.
// fleet.Server satisfies it through a thin adapter in the daemon
// (converting its stats type to ShadowStats).
type Fleet interface {
	// BeginShadow compiles source and starts dual evaluation in every
	// eligible session; AbortShadow withdraws it; PromoteShadow swaps
	// the candidate in as the active spec under epoch.
	BeginShadow(hash, source string) error
	AbortShadow(hash string) error
	PromoteShadow(hash string, epoch uint64) error
	// ShadowStats snapshots the current round; ok is false when none
	// is in flight. ActiveEpoch is the epoch new default-spec sessions
	// are stamped with.
	ShadowStats() (ShadowStats, bool)
	ActiveEpoch() uint64
}

// GateResult is the offline gate's summary: how the candidate's
// verdicts compare with the recorded ones over the archive window.
type GateResult struct {
	// Sessions is how many archived sessions were re-checked.
	// Regressions counts rules that got noisier (new or more
	// violations) and Fixes rules that got quieter.
	Sessions, Regressions, Fixes int
	// Detail is a one-line human summary for status displays.
	Detail string
}

// Config wires a Controller.
type Config struct {
	// Registry stores specs and pointer state; required.
	Registry *Registry
	// Fleet is the live server; required.
	Fleet Fleet
	// Validate pre-checks a pushed source (parse + compile) before
	// anything durable happens. Nil skips — the fleet's BeginShadow
	// still compiles, but by then the spec is stored.
	Validate func(source string) error
	// Gate re-checks the candidate against archived history; nil skips
	// the offline gate. A gate error fails the push.
	Gate func(source string) (GateResult, error)
	// MaxRegressions is the most per-rule regressions the gate may
	// report before the push is refused.
	MaxRegressions int
	// MinShadowBatches is how many shadow-compared batches must
	// accumulate before the watch loop judges divergence (and, with
	// AutoPromote, promotes).
	MinShadowBatches uint64
	// MaxDivergence is the divergent-batch fraction
	// (DivergentBatches/Batches) above which the watch loop rolls the
	// candidate back.
	MaxDivergence float64
	// SLOBurn, when non-nil, supplies the deployment's current SLO
	// burn fraction; a reading above MaxSLOBurn (when > 0) during
	// shadow rolls the candidate back — a rollout that coincides with
	// an SLO fire is the wrong thing to keep pushing.
	SLOBurn    func() float64
	MaxSLOBurn float64
	// AutoPromote promotes automatically once MinShadowBatches have
	// compared clean. False leaves promotion to an explicit Promote
	// call (monitorctl spec promote).
	AutoPromote bool
	// Interval is the watch loop cadence; default one second.
	Interval time.Duration
	// Metrics, when non-nil, receives the controller's counters.
	Metrics *obs.Registry
}

// Status is a point-in-time rollout snapshot, JSON-shaped for the
// daemon's admin surface.
type Status struct {
	Phase string `json:"phase"`
	// Hash and Name identify the candidate of the current or last
	// rollout; empty when none happened yet.
	Hash string `json:"hash,omitempty"`
	Name string `json:"name,omitempty"`
	// ActiveHash and ActiveEpoch identify the promoted spec.
	ActiveHash  string `json:"active_hash,omitempty"`
	ActiveEpoch uint64 `json:"active_epoch"`
	// Gate carries the last offline-gate summary (nil when no gate ran
	// for the current rollout), Err the last validate/gate failure,
	// Reason the last rollback's cause. Pointer-typed so omitempty
	// actually elides them — a zero GateResult would otherwise render
	// as a gate that ran over zero sessions.
	Gate   *GateResult `json:"gate,omitempty"`
	Err    string      `json:"error,omitempty"`
	Reason string      `json:"rollback_reason,omitempty"`
	// Shadow carries the live round's counters while shadowing, nil
	// otherwise.
	Shadow *ShadowStats `json:"shadow,omitempty"`
}

// Controller drives one candidate at a time through the rollout
// pipeline: validate → store → offline gate → shadow → promote or
// rollback. Safe for concurrent use; the watch loop enforces the
// divergence and SLO thresholds in the background.
type Controller struct {
	cfg Config

	// opMu serializes the promote/rollback transitions end to end —
	// phase re-check, fleet call, registry record, phase update — so a
	// watch-loop rollback can never interleave with a manual promote
	// (or vice versa): whichever acquires opMu second re-reads the
	// phase and bows out. Always acquired before mu, never while
	// holding it.
	opMu sync.Mutex

	mu     sync.Mutex
	phase  Phase
	hash   string
	name   string
	gate   *GateResult
	errMsg string
	reason string

	pushes       *obs.Counter
	gateFailures *obs.Counter
	promotes     *obs.Counter
	rollbacks    *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// NewController validates cfg, registers metrics, and starts the
// watch loop. Close releases it.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Registry == nil || cfg.Fleet == nil {
		return nil, errors.New("specreg: controller requires a Registry and a Fleet")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	c := &Controller{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg := cfg.Metrics; reg != nil {
		c.pushes = reg.Counter("cpsmon_specreg_pushes_total", "Spec pushes accepted into the rollout pipeline.")
		c.gateFailures = reg.Counter("cpsmon_specreg_gate_failures_total", "Pushes refused by the offline gate.")
		c.promotes = reg.Counter("cpsmon_specreg_promotes_total", "Candidates promoted to active.")
		c.rollbacks = reg.Counter("cpsmon_specreg_rollbacks_total", "Candidates rolled back during shadow.")
		reg.GaugeFunc("cpsmon_specreg_phase", "Rollout phase (0 idle, 1 gating, 2 gate-failed, 3 shadowing, 4 promoted, 5 rolled-back).",
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(c.phase)
			})
	}
	go c.watch()
	return c, nil
}

// Close stops the watch loop. An in-flight shadow round keeps running
// in the fleet — Close is for process shutdown, not rollback.
func (c *Controller) Close() {
	close(c.stop)
	<-c.done
}

// Push drives a new candidate through validation, storage and the
// offline gate, then hands it to the fleet for shadow evaluation. It
// returns the candidate's content hash. Only one rollout may be in
// flight: a push during gating or shadowing is refused.
func (c *Controller) Push(name, source string) (string, error) {
	if err := c.beginPush(name, source); err != nil {
		return "", err
	}
	hash, err := c.cfg.Registry.Put(name, source)
	if err != nil {
		c.fail(err)
		return "", err
	}
	c.mu.Lock()
	c.hash = hash
	c.mu.Unlock()

	if c.cfg.Gate != nil {
		res, err := c.cfg.Gate(source)
		if err != nil {
			c.failGate(fmt.Errorf("specreg: offline gate: %w", err))
			return hash, fmt.Errorf("specreg: offline gate: %w", err)
		}
		c.mu.Lock()
		c.gate = &res
		c.mu.Unlock()
		if res.Regressions > c.cfg.MaxRegressions {
			err := fmt.Errorf("specreg: offline gate found %d rule regressions (max %d)", res.Regressions, c.cfg.MaxRegressions)
			c.failGate(err)
			return hash, err
		}
	}

	if err := c.cfg.Registry.SetCandidate(hash); err != nil {
		c.fail(err)
		return hash, err
	}
	if err := c.cfg.Fleet.BeginShadow(hash, source); err != nil {
		// SetCandidate durably staged the candidate; clear the pointer
		// with a rollback record so status does not show a stale staged
		// candidate forever. The original error stays the one reported.
		if rbErr := c.cfg.Registry.Rollback(hash, "begin shadow: "+err.Error()); rbErr != nil {
			err = fmt.Errorf("%w (and clearing the candidate pointer failed: %v)", err, rbErr)
		}
		c.fail(err)
		return hash, err
	}
	c.mu.Lock()
	c.phase = PhaseShadowing
	c.mu.Unlock()
	if c.pushes != nil {
		c.pushes.Add(1)
	}
	return hash, nil
}

// beginPush validates the source and claims the pipeline.
func (c *Controller) beginPush(name, source string) error {
	if c.cfg.Validate != nil {
		if err := c.cfg.Validate(source); err != nil {
			return fmt.Errorf("specreg: candidate %q does not compile: %w", name, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phase == PhaseGating || c.phase == PhaseShadowing {
		return fmt.Errorf("specreg: rollout of %.12s already in flight (%s)", c.hash, c.phase)
	}
	c.phase = PhaseGating
	c.name, c.gate, c.errMsg, c.reason = name, nil, "", ""
	return nil
}

// fail records a pipeline error and returns to idle; failGate records
// a gate refusal specifically.
func (c *Controller) fail(err error) {
	c.mu.Lock()
	c.phase = PhaseIdle
	c.errMsg = err.Error()
	c.mu.Unlock()
}

func (c *Controller) failGate(err error) {
	c.mu.Lock()
	c.phase = PhaseGateFailed
	c.errMsg = err.Error()
	c.mu.Unlock()
	if c.gateFailures != nil {
		c.gateFailures.Add(1)
	}
}

// Promote swaps the shadowing candidate in as the active spec, under
// the next epoch, durably in registry order: the fleet records the
// promote in ledger and archive before sessions adopt, then the
// registry's pointer moves.
func (c *Controller) Promote() error {
	c.mu.Lock()
	if c.phase != PhaseShadowing {
		c.mu.Unlock()
		return fmt.Errorf("specreg: no candidate shadowing (phase %s)", c.phase)
	}
	hash := c.hash
	c.mu.Unlock()
	return c.promote(hash)
}

func (c *Controller) promote(hash string) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	// Re-check under opMu: a rollback (manual or watch-loop) may have
	// won the race between the caller's phase check and here.
	c.mu.Lock()
	if c.phase != PhaseShadowing || c.hash != hash {
		phase := c.phase
		c.mu.Unlock()
		return fmt.Errorf("specreg: candidate %.12s no longer shadowing (phase %s)", hash, phase)
	}
	c.mu.Unlock()
	epoch := c.cfg.Fleet.ActiveEpoch() + 1
	if err := c.cfg.Fleet.PromoteShadow(hash, epoch); err != nil {
		return err
	}
	if err := c.cfg.Registry.Promote(hash, epoch); err != nil {
		// The fleet already promoted; the registry pointer is behind
		// until the next successful promote. Surface it — losing the
		// pointer does not un-promote the fleet.
		c.fail(err)
		return err
	}
	c.mu.Lock()
	c.phase = PhasePromoted
	c.mu.Unlock()
	if c.promotes != nil {
		c.promotes.Add(1)
	}
	return nil
}

// Rollback withdraws the shadowing candidate with a recorded reason.
// No candidate verdict was ever delivered — that is what shadow mode
// guarantees.
func (c *Controller) Rollback(reason string) error {
	c.mu.Lock()
	if c.phase != PhaseShadowing {
		c.mu.Unlock()
		return fmt.Errorf("specreg: no candidate shadowing (phase %s)", c.phase)
	}
	hash := c.hash
	c.mu.Unlock()
	return c.rollback(hash, reason)
}

func (c *Controller) rollback(hash, reason string) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	// Re-check under opMu: a promote may have won the race between the
	// caller's phase check and here — the promoted candidate must not
	// be aborted out from under the fleet (AbortShadow would refuse
	// anyway; bowing out here keeps the registry clean too).
	c.mu.Lock()
	if c.phase != PhaseShadowing || c.hash != hash {
		phase := c.phase
		c.mu.Unlock()
		return fmt.Errorf("specreg: candidate %.12s no longer shadowing (phase %s)", hash, phase)
	}
	c.mu.Unlock()
	if err := c.cfg.Fleet.AbortShadow(hash); err != nil {
		return err
	}
	if err := c.cfg.Registry.Rollback(hash, reason); err != nil {
		c.fail(err)
		return err
	}
	c.mu.Lock()
	c.phase = PhaseRolledBack
	c.reason = reason
	c.mu.Unlock()
	if c.rollbacks != nil {
		c.rollbacks.Add(1)
	}
	return nil
}

// Status snapshots the rollout.
func (c *Controller) Status() Status {
	c.mu.Lock()
	st := Status{
		Phase:  c.phase.String(),
		Hash:   c.hash,
		Name:   c.name,
		Err:    c.errMsg,
		Reason: c.reason,
	}
	if c.gate != nil {
		g := *c.gate
		st.Gate = &g
	}
	shadowing := c.phase == PhaseShadowing
	c.mu.Unlock()
	if shadowing {
		if stats, ok := c.cfg.Fleet.ShadowStats(); ok {
			st.Shadow = &stats
		}
	}
	reg := c.cfg.Registry.State()
	st.ActiveHash, st.ActiveEpoch = reg.ActiveHash, reg.ActiveEpoch
	return st
}

// watch is the controller's background loop: while a candidate
// shadows, it enforces the divergence and SLO-burn thresholds and,
// with AutoPromote, promotes a clean round.
func (c *Controller) watch() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick runs one watch-loop evaluation.
func (c *Controller) tick() {
	c.mu.Lock()
	if c.phase != PhaseShadowing {
		c.mu.Unlock()
		return
	}
	hash := c.hash
	c.mu.Unlock()

	if c.cfg.SLOBurn != nil && c.cfg.MaxSLOBurn > 0 {
		if burn := c.cfg.SLOBurn(); burn > c.cfg.MaxSLOBurn {
			c.rollback(hash, fmt.Sprintf("slo burn %.2f over %.2f during shadow", burn, c.cfg.MaxSLOBurn))
			return
		}
	}

	stats, ok := c.cfg.Fleet.ShadowStats()
	if !ok || stats.Hash != hash {
		// The round vanished under us (server shutdown, or an abort
		// outside the controller): return to idle rather than act on
		// another round's numbers.
		c.fail(errors.New("specreg: shadow round no longer in flight"))
		return
	}
	if stats.Errors > 0 {
		c.rollback(hash, fmt.Sprintf("%d candidate evaluation errors during shadow", stats.Errors))
		return
	}
	if stats.Batches < c.cfg.MinShadowBatches {
		return // not enough evidence yet, either way
	}
	frac := float64(stats.DivergentBatches) / float64(stats.Batches)
	if c.cfg.MaxDivergence > 0 && frac > c.cfg.MaxDivergence {
		c.rollback(hash, fmt.Sprintf("divergence %.4f over %.4f after %d batches", frac, c.cfg.MaxDivergence, stats.Batches))
		return
	}
	if c.cfg.AutoPromote {
		c.promote(hash)
	}
}

package specreg

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeFleet is a scriptable Fleet: tests drive its shadow stats and
// record every call the controller makes.
type fakeFleet struct {
	mu          sync.Mutex
	epoch       uint64
	shadowing   string
	stats       ShadowStats
	begun       []string
	aborted     []string
	promoted    []string
	beginErr    error
	promotedCnt int
}

func (f *fakeFleet) BeginShadow(hash, source string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.beginErr != nil {
		return f.beginErr
	}
	f.shadowing = hash
	f.stats = ShadowStats{Hash: hash}
	f.begun = append(f.begun, hash)
	return nil
}

func (f *fakeFleet) AbortShadow(hash string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shadowing != hash {
		return errors.New("fake: not shadowing that hash")
	}
	f.shadowing = ""
	f.aborted = append(f.aborted, hash)
	return nil
}

func (f *fakeFleet) PromoteShadow(hash string, epoch uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shadowing != hash {
		return errors.New("fake: not shadowing that hash")
	}
	if epoch <= f.epoch {
		return errors.New("fake: epoch not increasing")
	}
	f.shadowing = ""
	f.epoch = epoch
	f.promoted = append(f.promoted, hash)
	f.promotedCnt++
	return nil
}

func (f *fakeFleet) ShadowStats() (ShadowStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.shadowing == "" {
		return ShadowStats{}, false
	}
	return f.stats, true
}

func (f *fakeFleet) ActiveEpoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeFleet) setStats(st ShadowStats) {
	f.mu.Lock()
	st.Hash = f.shadowing
	f.stats = st
	f.mu.Unlock()
}

func newTestController(t *testing.T, f *fakeFleet, mut func(*Config)) *Controller {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	cfg := Config{
		Registry:         reg,
		Fleet:            f,
		MinShadowBatches: 10,
		MaxDivergence:    0.1,
		Interval:         5 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// waitPhase polls Status until the phase matches or the deadline hits.
func waitPhase(t *testing.T, c *Controller, want string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := c.Status()
		if st.Phase == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase = %s, want %s (status %+v)", st.Phase, want, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerPushGatePromote(t *testing.T) {
	f := &fakeFleet{epoch: 1}
	var gated string
	c := newTestController(t, f, func(cfg *Config) {
		cfg.Validate = func(src string) error {
			if strings.Contains(src, "broken") {
				return errors.New("parse error")
			}
			return nil
		}
		cfg.Gate = func(src string) (GateResult, error) {
			gated = src
			return GateResult{Sessions: 4, Fixes: 1, Detail: "1 rule quieter"}, nil
		}
	})

	// A source that fails validation never touches the registry.
	if _, err := c.Push("bad", "broken spec"); err == nil {
		t.Fatal("invalid push accepted")
	}
	if got := len(c.cfg.Registry.Specs()); got != 0 {
		t.Fatalf("invalid push stored %d specs", got)
	}

	hash, err := c.Push("relaxed", "candidate source")
	if err != nil {
		t.Fatal(err)
	}
	if gated != "candidate source" {
		t.Fatal("gate never saw the candidate")
	}
	st := c.Status()
	if st.Phase != "shadowing" || st.Hash != hash || st.Gate == nil || st.Gate.Fixes != 1 {
		t.Fatalf("post-push status = %+v", st)
	}
	if len(f.begun) != 1 || f.begun[0] != hash {
		t.Fatalf("fleet saw BeginShadow %v", f.begun)
	}
	// A second push while one shadows is refused.
	if _, err := c.Push("other", "another source"); err == nil {
		t.Fatal("concurrent rollout accepted")
	}

	// Manual promote: fleet first, then the registry pointer, epoch
	// one past the fleet's active.
	if err := c.Promote(); err != nil {
		t.Fatal(err)
	}
	if len(f.promoted) != 1 || f.epoch != 2 {
		t.Fatalf("fleet promote state: %v epoch %d", f.promoted, f.epoch)
	}
	reg := c.cfg.Registry.State()
	if reg.ActiveHash != hash || reg.ActiveEpoch != 2 || reg.CandidateHash != "" {
		t.Fatalf("registry state after promote = %+v", reg)
	}
	if st := c.Status(); st.Phase != "promoted" || st.ActiveEpoch != 2 {
		t.Fatalf("status after promote = %+v", st)
	}
	// Promote twice is refused.
	if err := c.Promote(); err == nil {
		t.Fatal("double promote accepted")
	}
}

func TestControllerGateRefusesRegressions(t *testing.T) {
	f := &fakeFleet{}
	c := newTestController(t, f, func(cfg *Config) {
		cfg.MaxRegressions = 1
		cfg.Gate = func(string) (GateResult, error) {
			return GateResult{Sessions: 4, Regressions: 3}, nil
		}
	})
	if _, err := c.Push("noisy", "regressive source"); err == nil {
		t.Fatal("regressive candidate passed the gate")
	}
	st := c.Status()
	if st.Phase != "gate-failed" || st.Err == "" {
		t.Fatalf("status = %+v", st)
	}
	if len(f.begun) != 0 {
		t.Fatal("gate-failed candidate reached the fleet")
	}
	// The pipeline frees up: a clean push afterwards proceeds.
	c.cfg.Gate = func(string) (GateResult, error) { return GateResult{}, nil }
	if _, err := c.Push("clean", "clean source"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); st.Phase != "shadowing" {
		t.Fatalf("phase after recovery push = %s", st.Phase)
	}
}

func TestControllerAutoRollbackOnDivergence(t *testing.T) {
	f := &fakeFleet{}
	c := newTestController(t, f, nil)
	hash, err := c.Push("diverging", "divergent source")
	if err != nil {
		t.Fatal(err)
	}
	// Below the evidence floor nothing happens, however divergent.
	f.setStats(ShadowStats{Batches: 5, DivergentBatches: 5})
	time.Sleep(30 * time.Millisecond)
	if st := c.Status(); st.Phase != "shadowing" {
		t.Fatalf("rolled back before MinShadowBatches: %+v", st)
	}
	// Past the floor, 20%% divergent > 10%% threshold → rollback.
	f.setStats(ShadowStats{Batches: 100, DivergentBatches: 20, Divergences: 41})
	st := waitPhase(t, c, "rolled-back")
	if st.Reason == "" || !strings.Contains(st.Reason, "divergence") {
		t.Fatalf("rollback reason = %q", st.Reason)
	}
	if len(f.aborted) != 1 || f.aborted[0] != hash {
		t.Fatalf("fleet aborts = %v", f.aborted)
	}
	if f.promotedCnt != 0 {
		t.Fatal("rolled-back candidate was promoted")
	}
	regSt := c.cfg.Registry.State()
	if regSt.RollbackHash != hash || regSt.CandidateHash != "" {
		t.Fatalf("registry state after rollback = %+v", regSt)
	}
}

func TestControllerAutoRollbackOnShadowErrors(t *testing.T) {
	f := &fakeFleet{}
	c := newTestController(t, f, nil)
	if _, err := c.Push("erroring", "error source"); err != nil {
		t.Fatal(err)
	}
	f.setStats(ShadowStats{Batches: 2, Errors: 1})
	st := waitPhase(t, c, "rolled-back")
	if !strings.Contains(st.Reason, "error") {
		t.Fatalf("rollback reason = %q", st.Reason)
	}
}

func TestControllerAutoRollbackOnSLOBurn(t *testing.T) {
	f := &fakeFleet{}
	var burn float64
	var mu sync.Mutex
	c := newTestController(t, f, func(cfg *Config) {
		cfg.MaxSLOBurn = 0.5
		cfg.SLOBurn = func() float64 { mu.Lock(); defer mu.Unlock(); return burn }
	})
	if _, err := c.Push("slow", "slow source"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	burn = 0.9
	mu.Unlock()
	st := waitPhase(t, c, "rolled-back")
	if !strings.Contains(st.Reason, "slo burn") {
		t.Fatalf("rollback reason = %q", st.Reason)
	}
}

// TestControllerBeginShadowFailureClearsCandidate: when the fleet
// refuses the candidate after SetCandidate durably staged it, the
// registry pointer must be cleared with a rollback record — not left
// showing a staged candidate that never reached the fleet.
func TestControllerBeginShadowFailureClearsCandidate(t *testing.T) {
	f := &fakeFleet{beginErr: errors.New("candidate compile blew up")}
	c := newTestController(t, f, nil)
	hash, err := c.Push("doomed", "doomed source")
	if err == nil {
		t.Fatal("push succeeded despite BeginShadow failure")
	}
	regSt := c.cfg.Registry.State()
	if regSt.CandidateHash != "" {
		t.Fatalf("candidate pointer still staged after BeginShadow failure: %+v", regSt)
	}
	if regSt.RollbackHash != hash || !strings.Contains(regSt.RollbackReason, "begin shadow") {
		t.Fatalf("no rollback record for the failed candidate: %+v", regSt)
	}
	if st := c.Status(); st.Phase != "idle" || st.Err == "" {
		t.Fatalf("status = %+v", st)
	}
	// The pipeline frees up for the next push.
	f.mu.Lock()
	f.beginErr = nil
	f.mu.Unlock()
	if _, err := c.Push("retry", "better source"); err != nil {
		t.Fatal(err)
	}
}

// TestControllerStaleRollbackRefused simulates the watch loop losing a
// race with a manual promote: tick captured the hash while the
// candidate was shadowing, but by the time its rollback runs the
// promote has completed. The stale rollback must bow out — not abort
// the promoted rollout in the fleet or write a rollback record over
// the registry's fresh active pointer. (And symmetrically: a stale
// promote after a rollback must not resurrect the candidate.)
func TestControllerStaleRollbackRefused(t *testing.T) {
	f := &fakeFleet{epoch: 1}
	c := newTestController(t, f, nil)
	hash, err := c.Push("racing", "racing source")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := c.rollback(hash, "stale tick"); err == nil {
		t.Fatal("stale rollback accepted after promote")
	}
	if len(f.aborted) != 0 {
		t.Fatalf("stale rollback reached the fleet: %v", f.aborted)
	}
	regSt := c.cfg.Registry.State()
	if regSt.ActiveHash != hash || regSt.RollbackHash != "" {
		t.Fatalf("registry after stale rollback = %+v", regSt)
	}
	if st := c.Status(); st.Phase != "promoted" {
		t.Fatalf("phase = %s, want promoted", st.Phase)
	}

	hash2, err := c.Push("withdrawn", "withdrawn source")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback("operator says no"); err != nil {
		t.Fatal(err)
	}
	if err := c.promote(hash2); err == nil {
		t.Fatal("stale promote accepted after rollback")
	}
	if f.promotedCnt != 1 {
		t.Fatalf("fleet promotes = %d, want 1", f.promotedCnt)
	}
}

func TestControllerAutoPromote(t *testing.T) {
	f := &fakeFleet{epoch: 7}
	c := newTestController(t, f, func(cfg *Config) { cfg.AutoPromote = true })
	hash, err := c.Push("clean", "clean candidate")
	if err != nil {
		t.Fatal(err)
	}
	f.setStats(ShadowStats{Batches: 50, DivergentBatches: 1}) // 2% < 10%
	st := waitPhase(t, c, "promoted")
	if st.ActiveEpoch != 8 || st.ActiveHash != hash {
		t.Fatalf("promoted status = %+v", st)
	}
	if len(f.promoted) != 1 {
		t.Fatalf("fleet promotes = %v", f.promoted)
	}
}

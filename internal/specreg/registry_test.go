package specreg

import (
	"os"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := r.Put("strict", "rule text one")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != Hash("rule text one") {
		t.Fatalf("Put hash = %s, want content hash", h1)
	}
	h2, err := r.Put("relaxed", "rule text two")
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("distinct sources share a hash")
	}
	// Re-pushing identical text is a no-op that returns the same hash
	// and keeps the original name.
	if h, err := r.Put("renamed", "rule text one"); err != nil || h != h1 {
		t.Fatalf("duplicate Put = %s, %v; want %s, nil", h, err, h1)
	}
	if err := r.Promote(h1, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCandidate(h2); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the fold must reproduce specs, order and pointers.
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	specs := r2.Specs()
	if len(specs) != 2 || specs[0].Hash != h1 || specs[0].Name != "strict" || specs[1].Hash != h2 {
		t.Fatalf("Specs() = %+v", specs)
	}
	if s, ok := r2.Get(h1); !ok || s.Source != "rule text one" {
		t.Fatalf("Get(%s) = %+v, %v", h1, s, ok)
	}
	// A 12-hex-digit prefix resolves too.
	if s, ok := r2.Get(h2[:12]); !ok || s.Hash != h2 {
		t.Fatalf("Get(prefix) = %+v, %v", s, ok)
	}
	st := r2.State()
	if st.ActiveHash != h1 || st.ActiveEpoch != 1 || st.CandidateHash != h2 {
		t.Fatalf("State() = %+v", st)
	}

	// Rollback clears the candidate and records the reason.
	if err := r2.Rollback(h2, "too divergent"); err != nil {
		t.Fatal(err)
	}
	st = r2.State()
	if st.CandidateHash != "" || st.RollbackHash != h2 || st.RollbackReason != "too divergent" {
		t.Fatalf("post-rollback State() = %+v", st)
	}
}

func TestRegistryPromoteEpochMonotonic(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, err := r.Put("s", "src")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(h, 3); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(h, 3); err == nil {
		t.Fatal("replayed promote epoch accepted")
	}
	if err := r.Promote(h, 2); err == nil {
		t.Fatal("regressing promote epoch accepted")
	}
	if err := r.Promote("deadbeef", 4); err == nil {
		t.Fatal("promote of unknown hash accepted")
	}
}

// TestRegistryTornTail crashes mid-append (simulated by appending
// garbage and a truncated record) and checks the reopen serves every
// record before the tear and lands appends on a clean boundary.
func TestRegistryTornTail(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	h, err := r.Put("strict", "good spec")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(h, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(r.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible length prefix followed by half a record.
	if _, err := f.Write([]byte{0x40, 0, 0, 0, rSpec, 0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.State(); st.ActiveHash != h || st.ActiveEpoch != 1 {
		t.Fatalf("post-tear State() = %+v", st)
	}
	// The truncation must leave the log appendable: a new record after
	// the repair must survive another reopen.
	h2, err := r2.Put("relaxed", "new spec")
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
	r3, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if _, ok := r3.Get(h2); !ok {
		t.Fatal("record appended after repair did not survive reopen")
	}
}

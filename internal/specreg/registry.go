// Package specreg is the deployment's spec registry and rollout
// controller: the machinery that takes a revised rule file from "text
// in an operator's editor" to "the spec every verdict means" without
// restarting monitord or invalidating a single in-flight session.
//
// The paper's central lesson is that specifications are the moving
// part: the authors revised their rules repeatedly as archived
// violations taught them what the specs should have said. This package
// makes that loop safe to close against a *live* fleet. A candidate
// spec is stored content-addressed (Registry), re-checked against
// archived history (the offline gate), evaluated in shadow next to the
// active spec on real traffic (the fleet's shadow mode), and only then
// promoted — atomically, under a new spec epoch that is stamped into
// the ledger, the archive and every subsequent verdict. A candidate
// that diverges too much, or whose rollout coincides with an SLO burn,
// is rolled back automatically with zero candidate verdicts ever
// delivered (Controller).
//
// # Registry layout
//
// A registry is a directory holding one append-only log,
// registry.log, in the repository's shared record discipline
// (little-endian, length-prefixed, CRC-32C closed, torn tail truncated
// at open — exactly as the durable ledger and the archive):
//
//	u32 len | u8 kind | payload | u32 crc
//
// Kinds:
//
//	spec      u16 len + hash | u16 len + name | u32 len + source
//	candidate u16 len + hash
//	promote   u64 epoch | u16 len + hash
//	rollback  u16 len + hash | u16 len + reason
//
// Specs are immutable and content-addressed by SHA-256 of their
// source, so a re-push of identical text is a no-op and the hash in a
// ledger or archive epoch record provably names one rule text forever.
// Every append is fsync'd before returning: registry operations are
// rare (human-initiated) and each one changes what a deployed spec
// hash *means*.
package specreg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// registryName is the log's file name inside the registry directory.
const registryName = "registry.log"

// Record kinds. The zero value is invalid on purpose: a zeroed tail
// never parses as a record.
const (
	rSpec      = 0x01
	rCandidate = 0x02
	rPromote   = 0x03
	rRollback  = 0x04
)

const (
	// minBody is the smallest record body: kind + u16 length + crc.
	minBody = 1 + 2 + 4
	// maxBody bounds a record body against corrupt length prefixes;
	// generous for a rule file, far below anything pathological.
	maxBody = 1 << 24
)

// crcTable is the Castagnoli table, as the ledger and archive use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Hash returns the registry's content address for a spec source: the
// SHA-256 of its bytes, hex encoded. Identical text always hashes
// identically, so the hash a verdict's epoch traces back to names one
// rule text, not one push.
func Hash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// Spec is one stored spec revision.
type Spec struct {
	// Hash is the content address (see Hash); Name the label it was
	// pushed under (informational — the hash is the identity); Source
	// the rule text itself.
	Hash, Name, Source string
}

// State is the registry's pointer state: which spec is active (and
// under which epoch), which is the pending candidate, and what the
// last rollback said.
type State struct {
	// ActiveHash and ActiveEpoch identify the promoted spec; zero
	// values before any promote.
	ActiveHash  string
	ActiveEpoch uint64
	// CandidateHash is the spec currently staged for rollout, empty
	// when none is.
	CandidateHash string
	// RollbackHash and RollbackReason describe the most recent
	// rollback, for operators asking "what happened to my push".
	RollbackHash, RollbackReason string
}

// Registry is the durable spec store. Safe for concurrent use; one
// monitord process owns one registry for its lifetime.
type Registry struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	specs map[string]*Spec
	order []string // insertion order, for stable listings
	st    State
}

// OpenRegistry reads (and repairs) the registry log in dir, creating
// dir and the file as needed. A torn tail — the previous process died
// mid-append — is truncated to the last valid record.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("specreg: %w", err)
	}
	path := filepath.Join(dir, registryName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("specreg: %w", err)
	}
	r := &Registry{path: path, specs: make(map[string]*Spec)}
	validEnd := r.fold(data)

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("specreg: %w", err)
	}
	r.f = f
	if validEnd < int64(len(data)) {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("specreg: truncating torn registry tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("specreg: %w", err)
	}
	return r, nil
}

// Path returns the registry file's path.
func (r *Registry) Path() string { return r.path }

// fold parses data record by record into the registry's in-memory
// state, stopping at the first byte that does not parse — the tear.
// It returns the valid prefix length.
func (r *Registry) fold(data []byte) int64 {
	at := int64(0)
	for {
		if at+4 > int64(len(data)) {
			return at
		}
		n := binary.LittleEndian.Uint32(data[at:])
		if n < minBody || n > maxBody || at+4+int64(n) > int64(len(data)) {
			return at
		}
		body := data[at+4 : at+4+int64(n)]
		sum := binary.LittleEndian.Uint32(body[len(body)-4:])
		if crc32.Checksum(body[:len(body)-4], crcTable) != sum {
			return at
		}
		if !r.foldRecord(body[0], body[1:len(body)-4]) {
			// A checksummed record this code does not understand:
			// version skew or silent corruption. Treat it as the tear.
			return at
		}
		at += 4 + int64(n)
	}
}

// foldRecord applies one validated record, reporting false when the
// payload does not parse.
func (r *Registry) foldRecord(kind byte, p []byte) bool {
	switch kind {
	case rSpec:
		hash, p, ok := cut16(p)
		if !ok {
			return false
		}
		name, p, ok := cut16(p)
		if !ok {
			return false
		}
		source, p, ok := cut32(p)
		if !ok || len(p) != 0 {
			return false
		}
		if _, dup := r.specs[hash]; !dup {
			r.specs[hash] = &Spec{Hash: hash, Name: name, Source: source}
			r.order = append(r.order, hash)
		}
	case rCandidate:
		hash, p, ok := cut16(p)
		if !ok || len(p) != 0 {
			return false
		}
		r.st.CandidateHash = hash
	case rPromote:
		if len(p) < 8 {
			return false
		}
		hash, rest, ok := cut16(p[8:])
		if !ok || len(rest) != 0 {
			return false
		}
		r.st.ActiveEpoch = binary.LittleEndian.Uint64(p)
		r.st.ActiveHash = hash
		if r.st.CandidateHash == hash {
			r.st.CandidateHash = ""
		}
	case rRollback:
		hash, rest, ok := cut16(p)
		if !ok {
			return false
		}
		reason, rest, ok := cut16(rest)
		if !ok || len(rest) != 0 {
			return false
		}
		r.st.RollbackHash, r.st.RollbackReason = hash, reason
		if r.st.CandidateHash == hash {
			r.st.CandidateHash = ""
		}
	default:
		return false
	}
	return true
}

// cut16 splits a u16-length-prefixed string off p; cut32 a u32 one
// (spec sources can outgrow 64KiB).
func cut16(p []byte) (s string, rest []byte, ok bool) {
	if len(p) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, false
	}
	return string(p[2 : 2+n]), p[2+n:], true
}

func cut32(p []byte) (s string, rest []byte, ok bool) {
	if len(p) < 4 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > maxBody || len(p) < 4+n {
		return "", nil, false
	}
	return string(p[4 : 4+n]), p[4+n:], true
}

// append writes and fsyncs one record. Caller holds mu.
func (r *Registry) append(kind byte, payload []byte) error {
	if r.f == nil {
		return errors.New("specreg: registry closed")
	}
	n := 1 + len(payload) + 4
	b := make([]byte, 0, 4+n)
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = append(b, kind)
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b[4:], crcTable))
	if _, err := r.f.Write(b); err != nil {
		return fmt.Errorf("specreg: registry append: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("specreg: registry sync: %w", err)
	}
	return nil
}

// appendStr16 appends a u16-length-prefixed string.
func appendStr16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// Put stores a spec revision and returns its content hash. Pushing
// text the registry already holds is a durable no-op: the existing
// entry (and its original name) wins, and the same hash comes back.
func (r *Registry) Put(name, source string) (string, error) {
	if len(name) > 0xFFFF {
		return "", fmt.Errorf("specreg: spec name over 64KiB")
	}
	if len(source) > maxBody/2 {
		return "", fmt.Errorf("specreg: spec source over %d bytes", maxBody/2)
	}
	hash := Hash(source)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[hash]; ok {
		return hash, nil
	}
	p := make([]byte, 0, 2+len(hash)+2+len(name)+4+len(source))
	p = appendStr16(p, hash)
	p = appendStr16(p, name)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(source)))
	p = append(p, source...)
	if err := r.append(rSpec, p); err != nil {
		return "", err
	}
	r.specs[hash] = &Spec{Hash: hash, Name: name, Source: source}
	r.order = append(r.order, hash)
	return hash, nil
}

// SetCandidate durably stages a stored spec for rollout.
func (r *Registry) SetCandidate(hash string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[hash]; !ok {
		return fmt.Errorf("specreg: unknown spec %.12s", hash)
	}
	if err := r.append(rCandidate, appendStr16(nil, hash)); err != nil {
		return err
	}
	r.st.CandidateHash = hash
	return nil
}

// Promote durably records a stored spec becoming active under epoch.
// Epochs must be strictly increasing — the registry is the last line
// of defense against a stale controller replaying an old promote.
func (r *Registry) Promote(hash string, epoch uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[hash]; !ok {
		return fmt.Errorf("specreg: unknown spec %.12s", hash)
	}
	if epoch <= r.st.ActiveEpoch {
		return fmt.Errorf("specreg: promote epoch %d not past active epoch %d", epoch, r.st.ActiveEpoch)
	}
	p := binary.LittleEndian.AppendUint64(nil, epoch)
	p = appendStr16(p, hash)
	if err := r.append(rPromote, p); err != nil {
		return err
	}
	r.st.ActiveHash, r.st.ActiveEpoch = hash, epoch
	if r.st.CandidateHash == hash {
		r.st.CandidateHash = ""
	}
	return nil
}

// Rollback durably records a candidate being withdrawn, with the
// reason an operator will later ask for.
func (r *Registry) Rollback(hash, reason string) error {
	if len(reason) > 0xFFFF {
		return fmt.Errorf("specreg: rollback reason over 64KiB")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p := appendStr16(nil, hash)
	p = appendStr16(p, reason)
	if err := r.append(rRollback, p); err != nil {
		return err
	}
	r.st.RollbackHash, r.st.RollbackReason = hash, reason
	if r.st.CandidateHash == hash {
		r.st.CandidateHash = ""
	}
	return nil
}

// Get returns a stored spec by content hash. A unique prefix of at
// least 12 hex digits also resolves, so operators can use the short
// form status displays print.
func (r *Registry) Get(hash string) (Spec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.specs[hash]; ok {
		return *s, true
	}
	if len(hash) >= 12 {
		var found *Spec
		for _, h := range r.order {
			if len(h) >= len(hash) && h[:len(hash)] == hash {
				if found != nil {
					return Spec{}, false // ambiguous prefix
				}
				found = r.specs[h]
			}
		}
		if found != nil {
			return *found, true
		}
	}
	return Spec{}, false
}

// Specs lists every stored spec in insertion order.
func (r *Registry) Specs() []Spec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Spec, 0, len(r.order))
	for _, h := range r.order {
		out = append(out, *r.specs[h])
	}
	return out
}

// State snapshots the registry's pointer state.
func (r *Registry) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// Close closes the registry file. Appends were already fsync'd.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

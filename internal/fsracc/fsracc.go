// Package fsracc implements the feature under test: a prototype-quality
// Full Speed Range Adaptive Cruise Control module.
//
// The paper tested a third-party FSRACC supplied as a placeholder for
// early system integration: realistic control behaviour, but *not*
// hardened for robustness. This implementation deliberately reproduces
// that class of prototype behaviour, because the paper's findings depend
// on it:
//
//   - No bounds checking of Velocity, TargetRange, TargetRelVel or
//     ACCSetSpeed: exceptional values propagate straight into the
//     control law (Section IV: "neither bounds checked ... nor
//     consistency checked").
//   - No consistency checking between the change of TargetRange and the
//     sign of TargetRelVel.
//   - A single-cycle positive RequestedDecel when a braking phase ends
//     (the control-overshoot source of most Rule #5 violations) and a
//     one-cycle positive blip when the feature is switched on into an
//     immediate braking situation (the latent-initialization bug).
//   - Internal consistency for the errors it *does* detect: whenever
//     ServiceACC is raised, ACCEnabled is dropped in the same cycle, so
//     Rule #0 can never be violated.
//
// The module is a black box to the rest of the system: it consumes the
// Figure 1 input signals and produces the Figure 1 output signals, with
// no other interface. The sole exception is IntendsAccel, a test-only
// ground-truth probe used by the intent-approximation ablation; it is
// never broadcast on the bus.
package fsracc

import "math"

// Mode is the internal operating mode of the controller.
type Mode int

const (
	// ModeOff means cruise control is not engaged.
	ModeOff Mode = iota + 1
	// ModeStandby means engagement is requested but suppressed (driver
	// braking).
	ModeStandby
	// ModeActive means the feature is controlling the vehicle.
	ModeActive
	// ModeFault means the feature detected an internal error; ServiceACC
	// is raised and control is relinquished.
	ModeFault
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeStandby:
		return "standby"
	case ModeActive:
		return "active"
	case ModeFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Inputs is the Figure 1 input signal set, as read from the network
// (possibly through the HIL injection multiplexors).
type Inputs struct {
	Velocity     float64 // m/s
	AccelPedPos  float64 // %
	BrakePedPres float64 // bar
	ACCSetSpeed  float64 // m/s
	ThrotPos     float64 // % (diagnostic only; no control effect)
	VehicleAhead bool
	TargetRange  float64 // m
	TargetRelVel float64 // m/s
	SelHeadway   float64 // enum ordinal
}

// Outputs is the Figure 1 output signal set broadcast by the feature.
type Outputs struct {
	ACCEnabled      bool
	BrakeRequested  bool
	TorqueRequested bool
	RequestedTorque float64 // N·m, may be negative (engine braking)
	RequestedDecel  float64 // m/s², negative when decelerating
	ServiceACC      bool
}

// Config holds the control parameters.
type Config struct {
	// EngageSpeed is the minimum ACCSetSpeed treated as an engagement
	// request, in m/s.
	EngageSpeed float64
	// CancelBrakePressure is the brake pedal pressure that cancels the
	// feature, in bar. (The accelerator pedal does not cancel: the
	// engine controller arbitrates the maximum of the driver's and the
	// feature's torque, so AccelPedPos and ThrotPos are diagnostic
	// inputs with no effect on the feature's own requests — which is
	// why their Table I rows are all-satisfied.)
	CancelBrakePressure float64
	// SpeedGain is the proportional speed-control gain (1/s).
	SpeedGain float64
	// GapGain is the proportional gap-control gain (1/s²).
	GapGain float64
	// RelVelGain is the relative-velocity gain (1/s).
	RelVelGain float64
	// MinGap is the standstill gap added to the headway distance, in m.
	MinGap float64
	// MaxAccel is the acceleration command ceiling, in m/s².
	MaxAccel float64
	// MaxDecel is the deceleration command floor, in m/s² (negative).
	MaxDecel float64
	// BrakeThreshold is the commanded acceleration below which the
	// brake path is used instead of (negative) engine torque, in m/s².
	BrakeThreshold float64
	// TorqueSlewRate limits RequestedTorque changes, in N·m per second.
	TorqueSlewRate float64
	// DecelTau is the brake-command lag time constant, in seconds.
	DecelTau float64
	// VelFilterTau is the time constant of the low-pass filter the
	// feature applies to its Velocity input, in seconds. The filter is
	// re-initialized from the raw input on every activation. Filtering
	// the control input is standard practice — and it means the raw,
	// noisy wheel-speed broadcast the monitor sees can momentarily read
	// above the set speed while the feature's smoothed torque ramp is
	// still rising, the source of the Rule #3/#4 "negligible" false
	// positives on real-vehicle logs.
	VelFilterTau float64
	// RadarFilterTau is the time constant of the low-pass filter on the
	// TargetRange and TargetRelVel inputs, in seconds. The filters are
	// re-initialized from the raw measurements whenever a target is
	// (re)acquired, so acquisition jumps pass through unsmoothed.
	RadarFilterTau float64
	// ReleaseOvershootFrac scales the single-cycle positive decel blip
	// emitted when a braking phase ends, as a fraction of the last
	// commanded deceleration magnitude.
	ReleaseOvershootFrac float64
	// SnapReleaseJump is the single-cycle rise of the acceleration
	// command (in m/s² per cycle) above which a release from braking
	// counts as a snap and triggers the overshoot blip. Smooth releases
	// ramp the command by a tiny amount per cycle and never trip it.
	SnapReleaseJump float64
	// ActivationBlip is the positive RequestedDecel emitted for one
	// cycle when the feature re-activates out of a fault retry straight
	// into braking, in m/s² (the latent initialization bug: the fault
	// path does not reset the actuation ramp state).
	ActivationBlip float64
	// FaultCycles is the number of consecutive non-finite command
	// cycles before the internal watchdog trips ServiceACC.
	FaultCycles int
	// FaultRecoveryCycles is the number of consecutive healthy cycles
	// after which a fault auto-clears (prototype retry behaviour).
	FaultRecoveryCycles int

	// Internal plant model used to convert commanded acceleration to an
	// engine torque request. The feature was tuned on the same vehicle.
	VehicleMass float64 // kg
	DragArea    float64 // Cd·A, m²
	AirDensity  float64 // kg/m³
	RollCoeff   float64
	WheelRadius float64 // m
	DriveRatio  float64
}

// DefaultConfig returns the parameter set used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		EngageSpeed:          5.0,
		CancelBrakePressure:  3.0,
		SpeedGain:            0.35,
		GapGain:              0.12,
		RelVelGain:           0.90,
		MinGap:               4.0,
		MaxAccel:             1.8,
		MaxDecel:             -3.5,
		BrakeThreshold:       -0.8,
		TorqueSlewRate:       200,
		DecelTau:             0.05,
		VelFilterTau:         0.4,
		RadarFilterTau:       0.15,
		ReleaseOvershootFrac: 0.08,
		SnapReleaseJump:      0.15,
		ActivationBlip:       0.12,
		FaultCycles:          50,
		FaultRecoveryCycles:  200,
		VehicleMass:          1600,
		DragArea:             0.70,
		AirDensity:           1.20,
		RollCoeff:            0.012,
		WheelRadius:          0.33,
		DriveRatio:           6.0,
	}
}

// Controller is the FSRACC module state.
type Controller struct {
	cfg Config

	mode         Mode
	torqueOut    float64
	decelOut     float64
	braking      bool
	lastDecelCmd float64
	releaseBlip  bool
	nonFinite    int
	healthy      int
	faultRetry   bool
	intendsAccel bool
	velFilt      float64
	velFiltInit  bool
	rangeFilt    float64
	relVelFilt   float64
	radarInit    bool
	targetLost   bool
}

// New creates a controller in ModeOff.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg, mode: ModeOff}
}

// Mode returns the current internal mode.
func (c *Controller) Mode() Mode { return c.mode }

// IntendsAccel reports whether the control law currently intends to
// accelerate the vehicle. This is ground truth for the
// intent-approximation experiments only; it is not a bus signal and the
// monitor never sees it.
func (c *Controller) IntendsAccel() bool { return c.intendsAccel }

// headwayTimeFor maps the SelHeadway enum to a headway time in seconds.
// Ordinal 0 ("not selected") falls back to the medium setting — a benign
// default the supplier did implement. Ordinals beyond the declared range
// are NOT defended against: the lookup returns zero headway, the garbage
// a raw table read would produce. On the HIL the interface's type
// checking makes that unreachable; on the real vehicle it is not
// (Section V.C.3).
func (c *Controller) headwayTimeFor(sel float64) float64 {
	switch {
	case math.IsNaN(sel):
		return math.NaN()
	case sel == 0, sel == 2:
		return 1.5
	case sel == 1:
		return 1.0
	case sel == 3:
		return 2.2
	default:
		return 0
	}
}

// Step advances the controller by dt seconds with the given inputs and
// returns the broadcast outputs.
func (c *Controller) Step(dt float64, in Inputs) Outputs {
	engaged := in.ACCSetSpeed >= c.cfg.EngageSpeed
	braking := in.BrakePedPres > c.cfg.CancelBrakePressure

	prevMode := c.mode
	switch {
	case c.mode == ModeFault:
		// Fault handling below.
	case !engaged:
		c.mode = ModeOff
	case braking:
		c.mode = ModeStandby
	default:
		c.mode = ModeActive
	}

	if c.mode != ModeActive {
		if c.mode == ModeOff || c.mode == ModeStandby {
			c.resetActuation()
		}
		if c.mode == ModeOff {
			c.faultRetry = false
		}
		if c.mode == ModeFault {
			c.stepFaultRecovery(engaged)
		}
		c.velFiltInit = false
		c.radarInit = false
		return c.inactiveOutputs()
	}

	// Low-pass the speed input, re-initializing on activation.
	if !c.velFiltInit {
		c.velFilt = in.Velocity
		c.velFiltInit = true
	} else {
		alpha := dt / (c.cfg.VelFilterTau + dt)
		c.velFilt += alpha * (in.Velocity - c.velFilt)
	}
	// Low-pass the radar inputs, re-initializing on (re)acquisition so
	// the discrete jump from zero to the true range is not smeared.
	c.targetLost = c.radarInit && !in.VehicleAhead
	if !in.VehicleAhead {
		c.radarInit = false
	} else if !c.radarInit {
		c.rangeFilt = in.TargetRange
		c.relVelFilt = in.TargetRelVel
		c.radarInit = true
	} else {
		alpha := dt / (c.cfg.RadarFilterTau + dt)
		c.rangeFilt += alpha * (in.TargetRange - c.rangeFilt)
		c.relVelFilt += alpha * (in.TargetRelVel - c.relVelFilt)
	}

	cmd := c.commandedAccel(in)
	c.intendsAccel = cmd > 0.2

	// Internal watchdog: the only input problem the prototype detects is
	// its own command going non-finite for a sustained period.
	if !isFinite(cmd) {
		c.nonFinite++
		if c.nonFinite >= c.cfg.FaultCycles {
			c.mode = ModeFault
			c.healthy = 0
			c.resetActuation()
			return c.inactiveOutputs()
		}
	} else {
		c.nonFinite = 0
	}

	activated := prevMode != ModeActive

	return c.actuate(dt, in, cmd, activated)
}

// commandedAccel evaluates the control law. No input validation
// whatsoever: this is where exceptional values flow through.
func (c *Controller) commandedAccel(in Inputs) float64 {
	speedCmd := clamp(c.cfg.SpeedGain*(in.ACCSetSpeed-c.velFilt), c.cfg.MaxDecel, c.cfg.MaxAccel)
	if !in.VehicleAhead {
		return speedCmd
	}
	desiredGap := c.headwayTimeFor(in.SelHeadway)*c.velFilt + c.cfg.MinGap
	gapCmd := c.cfg.GapGain*(c.rangeFilt-desiredGap) + c.cfg.RelVelGain*c.relVelFilt
	gapCmd = clamp(gapCmd, c.cfg.MaxDecel, c.cfg.MaxAccel)
	return math.Min(speedCmd, gapCmd)
}

// actuate converts the commanded acceleration to torque/brake requests,
// reproducing the prototype's actuation artifacts.
func (c *Controller) actuate(dt float64, in Inputs, cmd float64, activated bool) Outputs {
	out := Outputs{ACCEnabled: true}

	useBrakes := !(cmd >= c.cfg.BrakeThreshold) // non-finite cmd lands on the brake path

	retry := c.faultRetry
	if activated {
		c.faultRetry = false
	}

	if useBrakes {
		if activated && retry {
			// Latent initialization bug: re-activating out of a fault
			// retry straight into a braking situation emits one cycle
			// of positive decel — the fault path never reset the
			// actuation ramp state.
			c.braking = true
			c.decelOut = c.cfg.ActivationBlip
			c.lastDecelCmd = cmd
			out.BrakeRequested = true
			out.RequestedDecel = c.decelOut
			out.RequestedTorque = c.torqueOut
			return out
		}
		c.braking = true
		c.releaseBlip = false
		// First-order lag toward the commanded deceleration.
		alpha := dt / (c.cfg.DecelTau + dt)
		c.decelOut += alpha * (cmd - c.decelOut)
		c.lastDecelCmd = cmd
		out.BrakeRequested = true
		out.RequestedDecel = c.decelOut
		// RequestedTorque goes stale while braking: the field keeps
		// broadcasting the last slewed value (the engine controller
		// ignores it while TorqueRequested is false). Freezing rather
		// than zeroing avoids meaningless torque steps on every
		// torque/brake handoff.
		out.RequestedTorque = c.torqueOut
		return out
	}

	// Torque path.
	if c.braking && !c.releaseBlip && !c.targetLost && isFinite(c.lastDecelCmd) && cmd-c.lastDecelCmd > c.cfg.SnapReleaseJump {
		// (When the braking target has just been lost, the feature
		// cancels braking outright rather than ramping the loop out,
		// so no overshoot occurs on cut-outs.)
		// Control overshoot on brake release: when the acceleration
		// command *snaps* upward out of braking within one cycle (as
		// injected faults appearing or vanishing make it do), the loop
		// overshoots and emits one final braking cycle with a small
		// positive decel. A smooth release ramps the command by a tiny
		// amount per cycle and never trips this, which is why normal
		// driving stays clean on Rule #5.
		c.releaseBlip = true
		c.decelOut = c.cfg.ReleaseOvershootFrac * -c.lastDecelCmd
		out.BrakeRequested = true
		out.RequestedDecel = c.decelOut
		out.RequestedTorque = c.torqueOut
		return out
	}
	c.braking = false
	c.releaseBlip = false
	c.decelOut = 0
	c.lastDecelCmd = 0

	target := c.torqueForAccel(cmd, c.velFilt)
	maxStep := c.cfg.TorqueSlewRate * dt
	diff := target - c.torqueOut
	if diff > maxStep {
		diff = maxStep
	} else if diff < -maxStep {
		diff = -maxStep
	}
	if isFinite(diff) {
		c.torqueOut += diff
	} else {
		c.torqueOut = target // non-finite flows straight out, unvalidated
	}
	out.TorqueRequested = true
	out.RequestedTorque = c.torqueOut
	return out
}

// torqueForAccel is the feature's internal inverse plant model. It uses
// the (possibly faulty) Velocity input, so a corrupted speed corrupts
// the torque request.
func (c *Controller) torqueForAccel(accel, velocity float64) float64 {
	drag := 0.5 * c.cfg.AirDensity * c.cfg.DragArea * velocity * velocity
	roll := c.cfg.RollCoeff * c.cfg.VehicleMass * 9.81
	force := c.cfg.VehicleMass*accel + drag + roll
	return force * c.cfg.WheelRadius / c.cfg.DriveRatio
}

func (c *Controller) stepFaultRecovery(engaged bool) {
	if !engaged {
		// Disengaging clears the fault.
		c.mode = ModeOff
		c.nonFinite = 0
		c.healthy = 0
		c.faultRetry = false
		return
	}
	c.healthy++
	if c.healthy >= c.cfg.FaultRecoveryCycles {
		// Prototype retry: clear the fault and try again.
		c.mode = ModeStandby
		c.nonFinite = 0
		c.healthy = 0
		c.faultRetry = true
	}
}

func (c *Controller) resetActuation() {
	c.torqueOut = 0
	c.decelOut = 0
	c.braking = false
	c.releaseBlip = false
	c.lastDecelCmd = 0
	c.intendsAccel = false
}

func (c *Controller) inactiveOutputs() Outputs {
	return Outputs{ServiceACC: c.mode == ModeFault}
}

func clamp(v, lo, hi float64) float64 {
	// NaN passes through: the prototype's clamp is a pair of naive
	// comparisons, which is exactly how NaN escapes saturation blocks.
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

package fsracc

import (
	"math"
	"testing"
	"testing/quick"
)

const dt = 0.01

// cruise returns nominal free-road inputs: engaged at 25 m/s, currently
// driving at the given speed with no target ahead.
func cruise(speed float64) Inputs {
	return Inputs{
		Velocity:    speed,
		ACCSetSpeed: 25,
		SelHeadway:  2,
	}
}

// follow returns nominal following inputs at the given range/relvel.
func follow(speed, rng, relvel float64) Inputs {
	in := cruise(speed)
	in.VehicleAhead = true
	in.TargetRange = rng
	in.TargetRelVel = relvel
	return in
}

func run(c *Controller, in Inputs, steps int) Outputs {
	var out Outputs
	for i := 0; i < steps; i++ {
		out = c.Step(dt, in)
	}
	return out
}

func TestModeOffWhenNotEngaged(t *testing.T) {
	c := New(DefaultConfig())
	in := cruise(20)
	in.ACCSetSpeed = 0
	out := c.Step(dt, in)
	if c.Mode() != ModeOff {
		t.Errorf("mode = %v, want off", c.Mode())
	}
	if out.ACCEnabled || out.TorqueRequested || out.BrakeRequested || out.ServiceACC {
		t.Errorf("inactive outputs not clean: %+v", out)
	}
}

func TestModeActiveWhenEngaged(t *testing.T) {
	c := New(DefaultConfig())
	out := c.Step(dt, cruise(20))
	if c.Mode() != ModeActive {
		t.Errorf("mode = %v, want active", c.Mode())
	}
	if !out.ACCEnabled {
		t.Error("ACCEnabled false while active")
	}
}

func TestBrakePedalCancelsToStandby(t *testing.T) {
	c := New(DefaultConfig())
	c.Step(dt, cruise(20))
	in := cruise(20)
	in.BrakePedPres = 10
	out := c.Step(dt, in)
	if c.Mode() != ModeStandby {
		t.Errorf("mode = %v, want standby", c.Mode())
	}
	if out.ACCEnabled {
		t.Error("ACCEnabled true in standby")
	}
}

func TestAccelPedalHasNoControlEffect(t *testing.T) {
	// The engine controller arbitrates the maximum of driver and ACC
	// torque, so the feature ignores AccelPedPos entirely; its Table I
	// rows are all-S.
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	ina := cruise(20)
	inb := cruise(20)
	inb.AccelPedPos = 100
	var oa, ob Outputs
	for i := 0; i < 200; i++ {
		oa = a.Step(dt, ina)
		ob = b.Step(dt, inb)
	}
	if oa != ob {
		t.Errorf("AccelPedPos affected outputs: %+v vs %+v", oa, ob)
	}
}

func TestThrotPosHasNoControlEffect(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	ina := cruise(20)
	inb := cruise(20)
	inb.ThrotPos = math.NaN()
	var oa, ob Outputs
	for i := 0; i < 200; i++ {
		oa = a.Step(dt, ina)
		ob = b.Step(dt, inb)
	}
	if oa != ob {
		t.Errorf("ThrotPos affected outputs: %+v vs %+v", oa, ob)
	}
}

func TestSpeedControlRequestsTorqueBelowSetSpeed(t *testing.T) {
	c := New(DefaultConfig())
	out := run(c, cruise(20), 300)
	if !out.TorqueRequested {
		t.Fatal("TorqueRequested false while below set speed")
	}
	if out.RequestedTorque <= 0 {
		t.Errorf("RequestedTorque = %v, want positive", out.RequestedTorque)
	}
	if out.BrakeRequested {
		t.Error("BrakeRequested while accelerating")
	}
}

func TestSpeedControlEngineBrakesSlightlyAboveSetSpeed(t *testing.T) {
	c := New(DefaultConfig())
	// 27 m/s with set speed 25: command ≈ -0.7, above the brake
	// threshold, so the feature requests negative engine torque.
	out := run(c, cruise(27), 500)
	if !out.TorqueRequested {
		t.Fatal("TorqueRequested false during engine braking")
	}
	if out.RequestedTorque >= 0 {
		t.Errorf("RequestedTorque = %v, want negative at 2 m/s overspeed", out.RequestedTorque)
	}
}

func TestSpeedControlBrakesWellAboveSetSpeed(t *testing.T) {
	c := New(DefaultConfig())
	out := run(c, cruise(35), 300)
	if !out.BrakeRequested {
		t.Fatal("BrakeRequested false at 10 m/s overspeed")
	}
	if out.RequestedDecel >= 0 {
		t.Errorf("RequestedDecel = %v, want negative", out.RequestedDecel)
	}
	if out.TorqueRequested {
		t.Error("TorqueRequested while braking")
	}
}

func TestGapControlBrakesWhenClosingFast(t *testing.T) {
	c := New(DefaultConfig())
	out := run(c, follow(25, 20, -8), 300)
	if !out.BrakeRequested || out.RequestedDecel >= 0 {
		t.Errorf("no braking when closing fast: %+v", out)
	}
}

func TestGapControlSteadyFollowHoldsGap(t *testing.T) {
	c := New(DefaultConfig())
	// At the desired gap with zero relative velocity the command is
	// near zero: a small torque request to hold speed.
	desired := 1.5*25 + 4
	out := run(c, follow(25, desired, 0), 500)
	if !out.TorqueRequested {
		t.Fatalf("steady follow should hold with torque: %+v", out)
	}
	if out.BrakeRequested {
		t.Error("steady follow should not brake")
	}
}

func TestTorqueSlewRateLimited(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	var prev float64
	for i := 0; i < 100; i++ {
		out := c.Step(dt, cruise(15))
		if i > 0 {
			if d := out.RequestedTorque - prev; d > cfg.TorqueSlewRate*dt+1e-9 {
				t.Fatalf("torque slew %v exceeds limit %v", d, cfg.TorqueSlewRate*dt)
			}
		}
		prev = out.RequestedTorque
	}
}

func TestNoInputValidationPropagatesNaNDecel(t *testing.T) {
	c := New(DefaultConfig())
	run(c, follow(25, 41.5, 0), 50)
	in := follow(math.NaN(), 41.5, 0) // corrupted Velocity input
	out := c.Step(dt, in)
	if !out.BrakeRequested {
		t.Fatalf("NaN command did not land on brake path: %+v", out)
	}
	if !math.IsNaN(out.RequestedDecel) {
		t.Errorf("RequestedDecel = %v, want NaN propagated to the bus", out.RequestedDecel)
	}
}

func TestExceptionalTargetRangeCommandsAcceleration(t *testing.T) {
	// The paper's flagship failure: a huge TargetRange while following
	// makes the feature accelerate into the target.
	c := New(DefaultConfig())
	run(c, follow(20, 30, -2), 100)
	out := run(c, follow(20, 4294967296.000001, -2), 300)
	if !out.TorqueRequested || out.RequestedTorque <= 0 {
		t.Errorf("huge TargetRange did not command acceleration: %+v", out)
	}
}

func TestNegativeRelVelInconsistencyNotChecked(t *testing.T) {
	// Range growing but relvel hugely positive: the feature trusts the
	// positive relative velocity and accelerates despite a close gap.
	c := New(DefaultConfig())
	out := run(c, follow(25, 30, 50), 300)
	if !out.TorqueRequested || out.RequestedTorque <= 0 {
		t.Errorf("inconsistent relvel did not command acceleration: %+v", out)
	}
}

func TestWatchdogTripsServiceACCConsistently(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	in := follow(math.NaN(), 40, 0)
	tripped := false
	for i := 0; i < cfg.FaultCycles+10; i++ {
		out := c.Step(dt, in)
		if out.ServiceACC {
			tripped = true
			if out.ACCEnabled {
				t.Fatal("ServiceACC raised while ACCEnabled true (Rule #0 violation inside the feature)")
			}
		}
	}
	if !tripped {
		t.Fatal("watchdog never tripped on sustained NaN")
	}
	if c.Mode() != ModeFault {
		t.Errorf("mode = %v, want fault", c.Mode())
	}
}

func TestFaultAutoRecovery(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	run(c, follow(math.NaN(), 40, 0), cfg.FaultCycles+1)
	if c.Mode() != ModeFault {
		t.Fatalf("mode = %v, want fault", c.Mode())
	}
	run(c, cruise(20), cfg.FaultRecoveryCycles+2)
	if c.Mode() != ModeActive {
		t.Errorf("mode = %v, want active after recovery", c.Mode())
	}
}

func TestFaultClearsOnDisengage(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	run(c, follow(math.NaN(), 40, 0), cfg.FaultCycles+1)
	in := cruise(20)
	in.ACCSetSpeed = 0
	c.Step(dt, in)
	if c.Mode() != ModeOff {
		t.Errorf("mode = %v, want off after disengage", c.Mode())
	}
}

func TestSnapBrakeReleaseEmitsSingleCyclePositiveDecel(t *testing.T) {
	c := New(DefaultConfig())
	// Establish strong braking, then snap the relative velocity hugely
	// positive (as an injected fault does): the command jumps out of
	// braking within a couple of cycles and the loop overshoots.
	run(c, follow(25, 10, -10), 200)
	snapped := follow(25, 10, 60)
	var out Outputs
	blip := false
	for i := 0; i < 10; i++ {
		out = c.Step(dt, snapped)
		if out.BrakeRequested && out.RequestedDecel > 0 {
			blip = true
			break
		}
	}
	if !blip {
		t.Fatalf("no release blip within 10 cycles of the snap: %+v", out)
	}
	// Exactly one cycle: the next step must be clean.
	out = c.Step(dt, snapped)
	if out.BrakeRequested {
		t.Errorf("blip lasted more than one cycle: %+v", out)
	}
}

func TestSmoothBrakeReleaseHasNoBlip(t *testing.T) {
	c := New(DefaultConfig())
	// Warm up in steady following, then ramp the braking command
	// smoothly down and back by easing the relative velocity; no
	// single-cycle snap occurs.
	run(c, follow(25, 41.5, 0), 100)
	relvel := -4.0
	for i := 0; i < 2000; i++ {
		in := follow(25, 38, relvel)
		out := c.Step(dt, in)
		if out.BrakeRequested && out.RequestedDecel > 0 {
			t.Fatalf("smooth release produced a positive decel blip at step %d: %+v", i, out)
		}
		if relvel < 0 {
			relvel += 0.01 // ≈1 m/s² of relative easing, smooth
		}
	}
}

func TestFaultRetryActivationIntoBrakingEmitsBlip(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	// Trip the watchdog with sustained NaN, wait out the fault retry,
	// and re-activate into an immediate braking situation: the latent
	// initialization bug emits one cycle of positive decel.
	run(c, follow(math.NaN(), 40, 0), cfg.FaultCycles+1)
	if c.Mode() != ModeFault {
		t.Fatalf("mode = %v, want fault", c.Mode())
	}
	braking := follow(25, 12, -8)
	blip := false
	for i := 0; i < cfg.FaultRecoveryCycles+5; i++ {
		out := c.Step(dt, braking)
		if out.BrakeRequested && out.RequestedDecel == cfg.ActivationBlip {
			blip = true
			// Exactly one cycle: the next step must be a real decel.
			next := c.Step(dt, braking)
			if next.RequestedDecel >= 0 {
				t.Errorf("cycle after blip decel = %v, want negative", next.RequestedDecel)
			}
			break
		}
	}
	if !blip {
		t.Fatal("fault-retry activation blip missing")
	}
}

func TestDriverStandbyActivationHasNoBlip(t *testing.T) {
	c := New(DefaultConfig())
	// Standby entered by driver braking (no fault) and released into a
	// braking situation: no blip, the ramp state was properly reset.
	in := follow(25, 12, -8)
	in.BrakePedPres = 10
	c.Step(dt, in)
	if c.Mode() != ModeStandby {
		t.Fatalf("mode = %v, want standby", c.Mode())
	}
	out := c.Step(dt, follow(25, 12, -8))
	if out.RequestedDecel > 0 {
		t.Errorf("driver-standby activation produced positive decel %v", out.RequestedDecel)
	}
}

func TestActivationIntoAccelerationHasNoBlip(t *testing.T) {
	c := New(DefaultConfig())
	out := c.Step(dt, cruise(20))
	if out.BrakeRequested {
		t.Errorf("activation into free road requested braking: %+v", out)
	}
}

func TestHeadwayEnumMapping(t *testing.T) {
	c := New(DefaultConfig())
	tests := []struct {
		sel  float64
		want float64
	}{
		{0, 1.5}, // "not selected" falls back to medium
		{1, 1.0},
		{2, 1.5},
		{3, 2.2},
		{7, 0},   // out of range: garbage table read
		{200, 0}, // out of range: garbage table read
	}
	for _, tt := range tests {
		if got := c.headwayTimeFor(tt.sel); got != tt.want {
			t.Errorf("headwayTimeFor(%v) = %v, want %v", tt.sel, got, tt.want)
		}
	}
	if got := c.headwayTimeFor(math.NaN()); !math.IsNaN(got) {
		t.Errorf("headwayTimeFor(NaN) = %v, want NaN", got)
	}
}

func TestOutOfRangeHeadwayEnumTailgates(t *testing.T) {
	// With an out-of-range enum (possible only without the HIL's type
	// checking) the desired gap collapses to MinGap: the feature
	// tailgates. This is the Section V.C.3 hazard the HIL masked.
	cfg := DefaultConfig()
	c := New(cfg)
	in := follow(25, 15, 0) // 15 m at 25 m/s ≈ 0.6 s headway
	in.SelHeadway = 77
	out := run(c, in, 500)
	if out.BrakeRequested {
		t.Errorf("tailgating feature braked: %+v", out)
	}
	if !out.TorqueRequested {
		t.Errorf("tailgating feature should hold speed with torque: %+v", out)
	}
}

func TestIntendsAccelGroundTruth(t *testing.T) {
	c := New(DefaultConfig())
	run(c, cruise(15), 200)
	if !c.IntendsAccel() {
		t.Error("IntendsAccel false while far below set speed")
	}
	// Allow the input low-pass filter to converge to the new speed.
	run(c, cruise(35), 200)
	if c.IntendsAccel() {
		t.Error("IntendsAccel true while far above set speed")
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeOff, "off"}, {ModeStandby, "standby"}, {ModeActive, "active"},
		{ModeFault, "fault"}, {Mode(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

// TestServiceACCImpliesDisabledQuick property-tests Rule #0 inside the
// feature: whatever garbage the inputs hold, a cycle reporting
// ServiceACC never reports ACCEnabled.
func TestServiceACCImpliesDisabledQuick(t *testing.T) {
	f := func(vel, rng, relvel, set float64, ahead bool, steps uint8) bool {
		c := New(DefaultConfig())
		in := Inputs{
			Velocity:     vel,
			ACCSetSpeed:  set,
			VehicleAhead: ahead,
			TargetRange:  rng,
			TargetRelVel: relvel,
			SelHeadway:   2,
		}
		for i := 0; i < int(steps)+60; i++ {
			out := c.Step(dt, in)
			if out.ServiceACC && out.ACCEnabled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBrakeAndTorqueMutuallyExclusiveQuick property-tests that the
// feature never requests torque and braking in the same cycle.
func TestBrakeAndTorqueMutuallyExclusiveQuick(t *testing.T) {
	f := func(vel, rng, relvel float64, steps uint8) bool {
		c := New(DefaultConfig())
		in := follow(vel, rng, relvel)
		for i := 0; i < int(steps); i++ {
			out := c.Step(dt, in)
			if out.TorqueRequested && out.BrakeRequested {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRadarFilterInitializesOnAcquisition(t *testing.T) {
	// The acquisition jump (range 0 -> true value) must pass through
	// unsmeared: the filters re-initialize from the raw measurement, so
	// the very first gap command reflects the true geometry.
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	// a: always following at 12 m. b: free road, then the target
	// appears at 12 m.
	for i := 0; i < 100; i++ {
		a.Step(dt, follow(25, 12, -3))
		b.Step(dt, cruise(25))
	}
	oa := a.Step(dt, follow(25, 12, -3))
	ob := b.Step(dt, follow(25, 12, -3))
	if !oa.BrakeRequested {
		t.Fatalf("steady close follow not braking: %+v", oa)
	}
	if !ob.BrakeRequested {
		t.Errorf("fresh acquisition at 12 m did not brake immediately: %+v (filter smeared the jump)", ob)
	}
}

func TestRadarFilterSmoothsWithinTrack(t *testing.T) {
	// Within a continuous track, one noisy sample barely moves the
	// command: the filter absorbs it.
	c := New(DefaultConfig())
	run(c, follow(25, 41.5, 0), 300)
	clean := c.Step(dt, follow(25, 41.5, 0))
	spiked := c.Step(dt, follow(25, 60, 0)) // one wild range sample
	diff := spiked.RequestedTorque - clean.RequestedTorque
	if diff < 0 {
		diff = -diff
	}
	if diff > 3 {
		t.Errorf("single-sample range spike moved torque by %v N·m; radar filter not smoothing", diff)
	}
}

func TestRadarFilterResetAfterTargetLoss(t *testing.T) {
	// Losing the target resets the filters; the next acquisition must
	// again use raw values, not stale filtered state.
	c := New(DefaultConfig())
	run(c, follow(25, 60, 0), 200) // far target
	run(c, cruise(25), 50)         // lost
	out := c.Step(dt, follow(25, 10, -6))
	if !out.BrakeRequested {
		t.Errorf("re-acquisition at 10 m closing did not brake: %+v (stale filter state)", out)
	}
}

func TestNaNRadarPoisonsFilterUntilFaultRetry(t *testing.T) {
	cfg := DefaultConfig()
	c := New(cfg)
	run(c, follow(25, 41.5, 0), 100)
	// NaN range poisons the filter; the command goes non-finite and
	// the watchdog eventually trips.
	in := follow(25, math.NaN(), 0)
	tripped := false
	for i := 0; i < cfg.FaultCycles+10; i++ {
		if c.Step(dt, in).ServiceACC {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("NaN TargetRange never tripped the watchdog")
	}
}

// Package rules encodes the paper's seven safety rules (Rule #0 through
// Rule #6, Section III.C) in the specification language, together with
// the relaxed variants the paper arrives at after triaging real-vehicle
// false positives, and the default triage thresholds.
//
// The rules are "expert elicited common sense": they were written
// without knowledge of the feature's internals, only from the CAN-
// observable signals, and some are deliberately too strict — the paper
// adopts them and then relaxes them when false positives and
// uninteresting violations are found, which it argues is the reasonable
// way to employ runtime monitors in practice.
package rules

import (
	"fmt"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// Names lists the rule names in paper order. Both the strict and the
// relaxed sets use the same names, so Table I rows line up.
func Names() []string {
	return []string{"Rule0", "Rule1", "Rule2", "Rule3", "Rule4", "Rule5", "Rule6"}
}

// StrictSource is the specification text of the paper's rules as
// originally written: directly from the informal statements, with only
// a short start-of-trace warmup.
const StrictSource = `
// Rule #0: if the ServiceACC signal is true, then ACCEnabled must be
// false. A simple consistency check that the feature does not keep
// controlling the vehicle when it knows something is wrong.
spec Rule0 "ServiceACC implies not ACCEnabled" {
    warmup 100ms
    assert ServiceACC -> !ACCEnabled
}

// Rule #1: if the actual vehicle headway time is below 1.0s, it must
// recover to above 1.0s within 5s. Derived from an existing headway
// metric for a similar system. Encoded as a state machine instead of
// nested temporal operators.
monitor Rule1 "headway below 1.0s must recover within 5s" {
    warmup 100ms
    let headway = TargetRange / Velocity
    initial state Normal {
        when VehicleAhead && headway < 1.0 => Low
    }
    state Low {
        when !VehicleAhead || headway >= 1.0 => Normal
        after 5s => violate "headway below 1.0s not recovered within 5s"
    }
}

// Rule #2: if TargetRange is less than half the desired headway
// distance, RequestedTorque should not be increasing — the feature must
// not try to speed up when already too close to the target.
spec Rule2 "no torque increase when far inside desired headway" {
    warmup 100ms
    let desiredDist = cond(SelHeadway == 1.0, 1.0, cond(SelHeadway == 3.0, 2.2, 1.5)) * Velocity
    severity delta(RequestedTorque)
    assert (VehicleAhead && TargetRange < 0.5 * desiredDist) -> delta(RequestedTorque) <= 0.0
}

// Rule #3: if Velocity is greater than ACCSetSpeed and RequestedTorque
// is less than 0, it must still be less than 0 in the next timestep —
// don't start pushing when already above the set speed.
spec Rule3 "no new positive torque above set speed" {
    warmup 100ms
    severity delta(RequestedTorque)
    assert (Velocity > ACCSetSpeed && prev(RequestedTorque) < 0.0) -> RequestedTorque < 0.0
}

// Rule #4: if Velocity is greater than ACCSetSpeed then RequestedTorque
// must stop increasing at some point within 400ms.
spec Rule4 "torque must stop increasing within 400ms above set speed" {
    warmup 100ms
    severity delta(RequestedTorque)
    assert (Velocity > ACCSetSpeed) -> eventually[0:400ms](delta(RequestedTorque) <= 0.0)
}

// Rule #5: if BrakeRequested is true then RequestedDecel must be less
// than or equal to 0 — a requested deceleration must in fact be a
// deceleration.
spec Rule5 "a requested deceleration must decelerate" {
    warmup 100ms
    severity RequestedDecel
    assert BrakeRequested -> RequestedDecel <= 0.0
}

// Rule #6: if VehicleAhead is true and TargetRange is less than 1, then
// TorqueRequested must be false or RequestedTorque must be negative —
// the near-collision check.
spec Rule6 "no positive torque request at extreme closeness" {
    warmup 100ms
    severity RequestedTorque
    assert (VehicleAhead && TargetRange < 1.0) -> (!TorqueRequested || RequestedTorque < 0.0)
}
`

// RelaxedSource is the rule set after the triage pass of Section IV.A:
// Rule #2 warms up across target-acquisition discontinuities (cut-ins
// and overtakes) and tolerates negligible increases; Rules #3 and #4
// gain a speed margin and an amplitude tolerance so that real vehicle
// dynamics (hills, sensor noise) no longer trip them; Rule #5 tolerates
// the single-cycle release overshoot. Rules #0, #1 and #6 are unchanged
// — they were not violated on the real vehicle.
const RelaxedSource = `
spec Rule0 "ServiceACC implies not ACCEnabled" {
    warmup 100ms
    assert ServiceACC -> !ACCEnabled
}

monitor Rule1 "headway below 1.0s must recover within 5s" {
    warmup 100ms
    let headway = TargetRange / Velocity
    initial state Normal {
        when VehicleAhead && headway < 1.0 => Low
    }
    state Low {
        when !VehicleAhead || headway >= 1.0 => Normal
        after 5s => violate "headway below 1.0s not recovered within 5s"
    }
}

spec Rule2 "no sustained torque increase when far inside desired headway" {
    warmup 100ms
    // Target acquisition jumps TargetRange from zero to the true value;
    // give the gap controller half a second to take over after cut-ins.
    warmup 500ms on rise(VehicleAhead)
    let desiredDist = cond(SelHeadway == 1.0, 1.0, cond(SelHeadway == 3.0, 2.2, 1.5)) * Velocity
    severity delta(RequestedTorque)
    // A cut-in moving away faster than the ego vehicle may be
    // legitimately accelerated after: only flag increases while the
    // gap is closing or static.
    assert (VehicleAhead && TargetRange < 0.5 * desiredDist && TargetRelVel < 0.5) -> delta(RequestedTorque) <= 0.5
}

spec Rule3 "no new positive torque meaningfully above set speed" {
    warmup 100ms
    severity delta(RequestedTorque)
    // Half a metre per second of margin absorbs wheel-speed noise, and
    // the consequent tolerates negligible crossings: torque increases
    // do not necessarily imply system intent.
    assert (Velocity > ACCSetSpeed + 0.5 && prev(RequestedTorque) < 0.0) -> RequestedTorque < 5.0
}

spec Rule4 "torque must stop increasing meaningfully above set speed" {
    warmup 100ms
    severity delta(RequestedTorque)
    assert (Velocity > ACCSetSpeed + 0.5) -> eventually[0:400ms](delta(RequestedTorque) <= 0.5)
}

spec Rule5 "a requested deceleration must decelerate (tolerating release overshoot)" {
    warmup 100ms
    severity RequestedDecel
    // The single-cycle positive blip on brake release "might be
    // considered acceptable"; require the decel to be non-positive
    // within two cycles instead of instantaneously.
    assert BrakeRequested -> eventually[0:20ms](RequestedDecel <= 0.0)
}

spec Rule6 "no positive torque request at extreme closeness" {
    warmup 100ms
    severity RequestedTorque
    assert (VehicleAhead && TargetRange < 1.0) -> (!TorqueRequested || RequestedTorque < 0.0)
}
`

// compile parses and compiles source against the vehicle network's
// signal universe.
func compile(source string) (*speclang.RuleSet, error) {
	f, err := speclang.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	rs, err := speclang.Compile(f, sigdb.Vehicle().SignalNames())
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	return rs, nil
}

// Strict compiles the strict rule set.
func Strict() (*speclang.RuleSet, error) { return compile(StrictSource) }

// Relaxed compiles the relaxed rule set.
func Relaxed() (*speclang.RuleSet, error) { return compile(RelaxedSource) }

// DefaultTriage returns the per-rule triage thresholds used in the
// evaluation: the intensity/duration judgment the paper describes
// applying when deciding whether a violation was a real safety problem.
func DefaultTriage() map[string]core.Triage {
	return map[string]core.Triage{
		// Rule #0 and Rule #1 violations are always real.
		"Rule2": {
			// Cut-in transients resolve within a few control cycles;
			// beyond that, a torque ramp while inside half headway is
			// real. Negligible-amplitude creep is an overly strict
			// reading of "increasing".
			TransientMax:   50 * time.Millisecond,
			NegligiblePeak: 0.5, // N·m per cycle
		},
		"Rule3": {
			// Rule #3 flags only the crossing step, so duration triage
			// is meaningless; classify by how hard the torque was
			// moving when it crossed zero. One slew step of the
			// feature's ramp is 2 N·m per cycle; vehicle-dynamics
			// creep stays safely below half of that.
			NegligiblePeak: 1.2,
		},
		"Rule4": {
			NegligiblePeak: 1.2,
		},
		"Rule5": {
			// The single-cycle release overshoot "may be tolerated in
			// an operational vehicle" but is still recorded.
			TransientMax: 25 * time.Millisecond,
		},
		// Rule #6 violations are always real: near-collision.
	}
}

// NewStrictMonitor builds the standard monitor: strict rules, default
// triage, update-aware multi-rate handling.
func NewStrictMonitor() (*core.Monitor, error) {
	rs, err := Strict()
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{Rules: rs, Triage: DefaultTriage()})
}

// NewRelaxedMonitor builds the post-triage monitor: relaxed rules,
// default triage, update-aware multi-rate handling.
func NewRelaxedMonitor() (*core.Monitor, error) {
	rs, err := Relaxed()
	if err != nil {
		return nil, err
	}
	return core.New(core.Config{Rules: rs, Triage: DefaultTriage()})
}

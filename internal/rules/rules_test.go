package rules

import (
	"os"
	"testing"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

func TestStrictCompiles(t *testing.T) {
	rs, err := Strict()
	if err != nil {
		t.Fatalf("Strict: %v", err)
	}
	if got := len(rs.Rules()); got != 7 {
		t.Fatalf("strict set has %d rules, want 7", got)
	}
	for _, name := range Names() {
		if _, ok := rs.Rule(name); !ok {
			t.Errorf("strict set missing %s", name)
		}
	}
}

func TestRelaxedCompiles(t *testing.T) {
	rs, err := Relaxed()
	if err != nil {
		t.Fatalf("Relaxed: %v", err)
	}
	if got := len(rs.Rules()); got != 7 {
		t.Fatalf("relaxed set has %d rules, want 7", got)
	}
	for _, name := range Names() {
		if _, ok := rs.Rule(name); !ok {
			t.Errorf("relaxed set missing %s", name)
		}
	}
}

func TestShippedRuleSourcesRoundTripThroughFormatter(t *testing.T) {
	for name, src := range map[string]string{"strict": StrictSource, "relaxed": RelaxedSource} {
		f, err := speclang.Parse(src)
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		printed := speclang.Format(f)
		f2, err := speclang.Parse(printed)
		if err != nil {
			t.Fatalf("%s: reparse of formatted source: %v", name, err)
		}
		if _, err := speclang.Compile(f2, sigdb.Vehicle().SignalNames()); err != nil {
			t.Fatalf("%s: recompile of formatted source: %v", name, err)
		}
	}
}

func TestShippedSpecFilesMatchConstants(t *testing.T) {
	// The specs/ directory ships the rule sets as plain files for the
	// monitorctl -rules flag; they must stay in sync with the compiled
	// constants.
	for file, want := range map[string]string{
		"../../specs/strict.spec":  StrictSource,
		"../../specs/relaxed.spec": RelaxedSource,
	} {
		got, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		if string(got) != want {
			t.Errorf("%s out of sync with the compiled rule source", file)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("Names has %d entries, want 7", len(names))
	}
	if names[0] != "Rule0" || names[6] != "Rule6" {
		t.Errorf("Names = %v", names)
	}
}

func TestMonitorsConstruct(t *testing.T) {
	if _, err := NewStrictMonitor(); err != nil {
		t.Errorf("NewStrictMonitor: %v", err)
	}
	if _, err := NewRelaxedMonitor(); err != nil {
		t.Errorf("NewRelaxedMonitor: %v", err)
	}
}

// mkTrace builds a trace with every vehicle signal present; fill sets
// per-signal constant values, and override tweaks individual samples.
func mkTrace(t *testing.T, steps int, fill map[string]float64, override func(tr *trace.Trace)) *trace.Trace {
	t.Helper()
	tr := trace.New()
	for _, name := range sigdb.Vehicle().SignalNames() {
		s := tr.Ensure(name)
		v := fill[name]
		for i := 0; i < steps; i++ {
			if err := s.Append(time.Duration(i)*sigdb.FastPeriod, v); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
	}
	if override != nil {
		override(tr)
	}
	return tr
}

// steady returns nominal cruising values for all signals.
func steady() map[string]float64 {
	return map[string]float64{
		sigdb.SigVelocity:        24,
		sigdb.SigACCSetSpeed:     25,
		sigdb.SigSelHeadway:      2,
		sigdb.SigVehicleAhead:    1,
		sigdb.SigTargetRange:     40,
		sigdb.SigTargetRelVel:    0,
		sigdb.SigACCEnabled:      1,
		sigdb.SigTorqueRequested: 1,
		sigdb.SigRequestedTorque: 20,
	}
}

func checkStrict(t *testing.T, tr *trace.Trace) *core.Report {
	t.Helper()
	mon, err := NewStrictMonitor()
	if err != nil {
		t.Fatalf("NewStrictMonitor: %v", err)
	}
	rep, err := mon.CheckTrace(tr)
	if err != nil {
		t.Fatalf("CheckTrace: %v", err)
	}
	return rep
}

func verdictOf(t *testing.T, rep *core.Report, rule string) core.Verdict {
	t.Helper()
	rr, ok := rep.Rule(rule)
	if !ok {
		t.Fatalf("missing rule %s", rule)
	}
	return rr.Verdict
}

func TestSteadyCruiseSatisfiesAllRules(t *testing.T) {
	rep := checkStrict(t, mkTrace(t, 200, steady(), nil))
	for _, name := range Names() {
		if v := verdictOf(t, rep, name); v != core.Satisfied {
			rr, _ := rep.Rule(name)
			t.Errorf("%s = %v on steady cruise: %+v", name, v, rr.Result.Violations)
		}
	}
}

func TestRule0Violation(t *testing.T) {
	fill := steady()
	fill[sigdb.SigServiceACC] = 1 // with ACCEnabled still 1
	rep := checkStrict(t, mkTrace(t, 100, fill, nil))
	if verdictOf(t, rep, "Rule0") != core.Violated {
		t.Error("Rule0 not violated when ServiceACC and ACCEnabled are both true")
	}
}

func TestRule1HeadwayNotRecovered(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTargetRange] = 18 // 18 m at 24 m/s = 0.75 s headway, held forever
	rep := checkStrict(t, mkTrace(t, 800, fill, nil))
	if verdictOf(t, rep, "Rule1") != core.Violated {
		t.Error("Rule1 not violated by a sustained sub-second headway")
	}
}

func TestRule1RecoveredInTime(t *testing.T) {
	// Headway dips below 1.0 s for two seconds, then recovers.
	tr := mkTrace(t, 800, steady(), func(tr *trace.Trace) {
		s, _ := tr.Series(sigdb.SigTargetRange)
		for i := 100; i < 300; i++ {
			s.Samples[i].V = 18
		}
	})
	rep := checkStrict(t, tr)
	if verdictOf(t, rep, "Rule1") != core.Satisfied {
		t.Error("Rule1 violated despite recovery within 5s")
	}
}

func TestRule2TorqueRampWhileTooClose(t *testing.T) {
	// Range far inside half the desired headway (0.5*1.5*24 = 18 m)
	// while torque ramps.
	tr := mkTrace(t, 300, steady(), func(tr *trace.Trace) {
		rng, _ := tr.Series(sigdb.SigTargetRange)
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		for i := 50; i < 300; i++ {
			rng.Samples[i].V = 10
			tq.Samples[i].V = 20 + 2*float64(i-50)
		}
	})
	rep := checkStrict(t, tr)
	rr, _ := rep.Rule("Rule2")
	if rr.Verdict != core.Violated {
		t.Fatal("Rule2 not violated by a torque ramp inside half headway")
	}
	if !rr.RealViolations() {
		t.Error("sustained 200 N·m/s ramp not classified real")
	}
}

func TestRule3TorqueCrossingAboveSetSpeed(t *testing.T) {
	fill := steady()
	fill[sigdb.SigVelocity] = 26 // above set speed
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		for i := 0; i < 300; i++ {
			tq.Samples[i].V = -10
		}
		for i := 150; i < 300; i++ {
			tq.Samples[i].V = 30 // abrupt crossing to positive
		}
	})
	rep := checkStrict(t, tr)
	rr, _ := rep.Rule("Rule3")
	if rr.Verdict != core.Violated {
		t.Fatal("Rule3 not violated by a negative-to-positive torque step above set speed")
	}
	if !rr.RealViolations() {
		t.Error("40 N·m crossing not classified real")
	}
}

func TestRule3NegligibleCrossing(t *testing.T) {
	fill := steady()
	fill[sigdb.SigVelocity] = 26
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		// Slow creep from -1 to +1 at 0.01 N·m per step.
		for i := 0; i < 300; i++ {
			tq.Samples[i].V = -1 + 0.01*float64(i)
		}
	})
	rep := checkStrict(t, tr)
	rr, _ := rep.Rule("Rule3")
	if rr.Verdict != core.Violated {
		t.Fatal("Rule3 not violated by the slow crossing")
	}
	if rr.RealViolations() {
		t.Error("negligible creep crossing classified real")
	}
}

func TestRule4SustainedRampAboveSetSpeed(t *testing.T) {
	fill := steady()
	fill[sigdb.SigVelocity] = 26
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		for i := 0; i < 300; i++ {
			tq.Samples[i].V = 2 * float64(i) // monotone ramp throughout
		}
	})
	rep := checkStrict(t, tr)
	if verdictOf(t, rep, "Rule4") != core.Violated {
		t.Error("Rule4 not violated by a sustained ramp above set speed")
	}
}

func TestRule4RampStopsInTime(t *testing.T) {
	fill := steady()
	fill[sigdb.SigVelocity] = 26
	tr := mkTrace(t, 400, fill, func(tr *trace.Trace) {
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		// Ramp for 300 ms, then plateau: a non-increase occurs within
		// every 400 ms window.
		for i := 0; i < 400; i++ {
			if i%40 < 30 {
				tq.Samples[i].V = float64(i)
			} else {
				tq.Samples[i].V = tq.Samples[i-1].V
			}
		}
	})
	rep := checkStrict(t, tr)
	if verdictOf(t, rep, "Rule4") != core.Satisfied {
		rr, _ := rep.Rule("Rule4")
		t.Errorf("Rule4 violated despite periodic plateaus: %+v", rr.Result.Violations)
	}
}

func TestRule5PositiveDecel(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTorqueRequested] = 0
	fill[sigdb.SigBrakeRequested] = 1
	fill[sigdb.SigRequestedDecel] = 0.3
	rep := checkStrict(t, mkTrace(t, 100, fill, nil))
	if verdictOf(t, rep, "Rule5") != core.Violated {
		t.Error("Rule5 not violated by a positive RequestedDecel while braking")
	}
}

func TestRule5SingleCycleBlipIsTransient(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTorqueRequested] = 0
	fill[sigdb.SigBrakeRequested] = 1
	fill[sigdb.SigRequestedDecel] = -1.5
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		d, _ := tr.Series(sigdb.SigRequestedDecel)
		d.Samples[150].V = 0.12 // one-cycle release overshoot
	})
	rep := checkStrict(t, tr)
	rr, _ := rep.Rule("Rule5")
	if rr.Verdict != core.Violated {
		t.Fatal("Rule5 missed the single-cycle blip")
	}
	if rr.Count(core.ClassTransient) != 1 || rr.RealViolations() {
		t.Errorf("blip classes = %v, want one transient", rr.Classes)
	}
}

func TestRule5NaNDecelIsReal(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTorqueRequested] = 0
	fill[sigdb.SigBrakeRequested] = 1
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		d, _ := tr.Series(sigdb.SigRequestedDecel)
		nan := 0.0
		nan /= nan
		for i := 100; i < 250; i++ {
			d.Samples[i].V = nan
		}
	})
	rep := checkStrict(t, tr)
	rr, _ := rep.Rule("Rule5")
	if !rr.RealViolations() {
		t.Error("sustained NaN RequestedDecel not classified real")
	}
}

func TestRule6NearCollision(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTargetRange] = 0.5
	fill[sigdb.SigRequestedTorque] = 50
	rep := checkStrict(t, mkTrace(t, 100, fill, nil))
	if verdictOf(t, rep, "Rule6") != core.Violated {
		t.Error("Rule6 not violated by positive torque at 0.5 m range")
	}
}

func TestRule6NegativeTorqueOK(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTargetRange] = 0.5
	fill[sigdb.SigRequestedTorque] = -5
	rep := checkStrict(t, mkTrace(t, 100, fill, nil))
	if verdictOf(t, rep, "Rule6") != core.Satisfied {
		t.Error("Rule6 violated despite negative torque request")
	}
}

func TestRelaxedRule2IgnoresCutInWarmup(t *testing.T) {
	// VehicleAhead rises mid-trace with a close target while torque
	// ramps briefly: strict flags it, relaxed's acquisition warm-up
	// does not.
	fill := steady()
	fill[sigdb.SigVehicleAhead] = 0
	fill[sigdb.SigTargetRange] = 0
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		ahead, _ := tr.Series(sigdb.SigVehicleAhead)
		rng, _ := tr.Series(sigdb.SigTargetRange)
		tq, _ := tr.Series(sigdb.SigRequestedTorque)
		for i := 150; i < 300; i++ {
			ahead.Samples[i].V = 1
			rng.Samples[i].V = 10
		}
		// Torque ramps around the acquisition, settling shortly after.
		for i := 140; i < 160; i++ {
			tq.Samples[i].V = 20 + 2*float64(i-140)
		}
		for i := 160; i < 300; i++ {
			tq.Samples[i].V = tq.Samples[159].V
		}
	})
	strictMon, _ := NewStrictMonitor()
	relaxedMon, _ := NewRelaxedMonitor()
	srep, err := strictMon.CheckTrace(tr)
	if err != nil {
		t.Fatalf("strict: %v", err)
	}
	rrep, err := relaxedMon.CheckTrace(tr)
	if err != nil {
		t.Fatalf("relaxed: %v", err)
	}
	if v, _ := srep.Rule("Rule2"); v.Verdict != core.Violated {
		t.Error("strict Rule2 did not flag the cut-in ramp")
	}
	if v, _ := rrep.Rule("Rule2"); v.Verdict != core.Satisfied {
		t.Error("relaxed Rule2 still flags the cut-in ramp")
	}
}

func TestRelaxedRule5ToleratesBlip(t *testing.T) {
	fill := steady()
	fill[sigdb.SigTorqueRequested] = 0
	fill[sigdb.SigBrakeRequested] = 1
	fill[sigdb.SigRequestedDecel] = -1.5
	tr := mkTrace(t, 300, fill, func(tr *trace.Trace) {
		d, _ := tr.Series(sigdb.SigRequestedDecel)
		d.Samples[150].V = 0.12
	})
	relaxedMon, _ := NewRelaxedMonitor()
	rep, err := relaxedMon.CheckTrace(tr)
	if err != nil {
		t.Fatalf("relaxed: %v", err)
	}
	if v, _ := rep.Rule("Rule5"); v.Verdict != core.Satisfied {
		t.Error("relaxed Rule5 still flags the single-cycle blip")
	}
}

func TestDefaultTriageCoversExpectedRules(t *testing.T) {
	tri := DefaultTriage()
	for _, name := range []string{"Rule2", "Rule3", "Rule4", "Rule5"} {
		if _, ok := tri[name]; !ok {
			t.Errorf("DefaultTriage missing %s", name)
		}
	}
	for _, name := range []string{"Rule0", "Rule1", "Rule6"} {
		if _, ok := tri[name]; ok {
			t.Errorf("DefaultTriage should leave %s fully real", name)
		}
	}
}

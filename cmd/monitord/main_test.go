package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/durable"
	"cpsmon/internal/fleet"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// syncBuffer lets the daemon goroutine and the test share an output
// buffer safely.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its
// address, its output buffer, and a shutdown function that asserts a
// clean exit.
func startDaemon(t *testing.T, args ...string) (string, *syncBuffer, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, out, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon shutdown: %v\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon did not exit:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "sessions") {
			t.Errorf("no final stats printed:\n%s", out.String())
		}
	}
}

// testFrames synthesizes a short ordered capture with one violation
// burst.
func testFrames(t *testing.T) []can.Frame {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < 120; tick++ {
		on := 0.0
		if tick >= 40 && tick < 80 {
			on = 1
		}
		_ = bus.Set(sigdb.SigServiceACC, on)
		_ = bus.Set(sigdb.SigACCEnabled, on)
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	return bus.Log().Frames()
}

func TestDaemonServesSession(t *testing.T) {
	addr, _, shutdown := startDaemon(t)
	var events []wire.Event
	c, err := fleet.Dial(addr, "veh-1", "", func(e wire.Event) { events = append(events, e) })
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	violated := false
	for _, rv := range v.Rules {
		violated = violated || rv.Violated
	}
	if !violated || len(events) == 0 {
		t.Errorf("expected a violation over the burst: verdict %+v, %d events", v, len(events))
	}
	shutdown()
}

func TestDaemonDrainsActiveSessionOnShutdown(t *testing.T) {
	addr, _, shutdown := startDaemon(t)
	c, err := fleet.Dial(addr, "veh-1", "strict", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// No Finish: the daemon's drain must still verdict the session.
	shutdown()
	if _, err := c.Wait(); err != nil {
		t.Fatalf("no verdict from drain: %v", err)
	}
}

// TestDaemonGapFlagsAndResilienceStats runs the daemon with the
// field-network hardening flags and streams a capture with a hole in
// it: the session must receive a gap event and the shutdown stats must
// include the resilience line.
func TestDaemonGapFlagsAndResilienceStats(t *testing.T) {
	addr, out, shutdown := startDaemon(t,
		"-silence-gap", (5 * sigdb.FastPeriod).String(),
		"-idle-timeout", "1m", "-resume-grace", "30s", "-error-budget", "4")
	var gaps atomic.Int32
	c, err := fleet.Dial(addr, "veh-gap", "", func(e wire.Event) {
		if e.Kind == wire.EventGap {
			gaps.Add(1)
		}
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	// Two bursts of ticks with a 50-tick silence between them.
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for _, tick := range []int{0, 1, 2, 3, 4, 55, 56, 57, 58, 59} {
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send(bus.Log().Frames()); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if gaps.Load() == 0 {
		t.Error("no gap event for a 50-tick bus silence")
	}
	shutdown()
	if !strings.Contains(out.String(), "resilience:") {
		t.Errorf("no resilience stats line:\n%s", out.String())
	}
}

var adminRE = regexp.MustCompile(`admin on (\S+)`)

// adminGet fetches one admin endpoint and returns status and body.
func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// scrapeAdmin fetches /metrics and parses every sample line into a
// value keyed by "name{labels}", failing on anything that is not valid
// Prometheus text exposition.
func scrapeAdmin(t *testing.T, adminURL string) map[string]float64 {
	t.Helper()
	status, body := adminGet(t, adminURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

// TestDaemonAdminAndJournal is the daemon-level observability e2e: a
// session streamed through a daemon running with -admin and -journal
// must be visible on /metrics (parseable, counters matching the
// session), /healthz must flip from ok to draining across shutdown,
// pprof must answer, and the journal must hold one JSON line per event
// plus the verdict.
func TestDaemonAdminAndJournal(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "verdicts.jsonl")
	addr, out, shutdown := startDaemon(t, "-admin", "127.0.0.1:0", "-journal", journalPath)
	m := adminRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("daemon never reported its admin address:\n%s", out.String())
	}
	adminURL := "http://" + m[1]

	if status, body := adminGet(t, adminURL+"/healthz"); status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz before drain: status %d body %q, want 200 ok", status, body)
	}

	var events atomic.Int32
	c, err := fleet.Dial(addr, "veh-obs", "strict", func(wire.Event) { events.Add(1) })
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	frames := testFrames(t)
	if err := c.Send(frames); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if events.Load() == 0 {
		t.Fatal("fixture produced no events; the journal assertions would be vacuous")
	}

	samples := scrapeAdmin(t, adminURL)
	if got := samples["cpsmon_fleet_frames_ingested_total"]; got != float64(len(frames)) {
		t.Errorf("frames_ingested = %v, want %d", got, len(frames))
	}
	if got := samples["cpsmon_fleet_sessions_opened_total"]; got != 1 {
		t.Errorf("sessions_opened = %v, want 1", got)
	}
	if got := samples[`cpsmon_wire_records_total{dir="rx",type="seq_batch"}`]; got == 0 {
		t.Error("wire codec counters absent from the admin registry")
	}
	if status, body := adminGet(t, adminURL+"/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ status %d", status)
	}

	shutdown()

	// The admin endpoint outlives the drain (it dies with the process),
	// but readiness must have flipped and metrics must stay scrapeable.
	if status, body := adminGet(t, adminURL+"/healthz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/healthz after drain: status %d body %q, want 503 draining", status, body)
	}
	if got := scrapeAdmin(t, adminURL)["cpsmon_fleet_sessions_closed_total"]; got != 1 {
		t.Errorf("sessions_closed after drain = %v, want 1", got)
	}

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	var verdicts, eventLines int
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch kind := rec["kind"]; kind {
		case "verdict":
			verdicts++
			if rules, ok := rec["rules"].([]any); !ok || len(rules) == 0 {
				t.Errorf("verdict line has no rule rows: %q", line)
			}
		case "begin", "end", "gap":
			eventLines++
			if rec["rule"] == "" && kind != "gap" {
				t.Errorf("event line missing rule: %q", line)
			}
		default:
			t.Errorf("journal line with unknown kind %v: %q", kind, line)
		}
	}
	if verdicts != 1 {
		t.Errorf("journal holds %d verdict lines, want 1", verdicts)
	}
	if eventLines != int(events.Load()) {
		t.Errorf("journal holds %d event lines, client received %d events", eventLines, events.Load())
	}
}

// TestDaemonArchivesSessions runs the daemon with -archive-dir and
// streams one session through it: the directory must afterwards hold
// every ingested frame and the session's verdict, readable by a plain
// catalog open — the flag-level proof that the archive subsystem is
// wired end to end.
func TestDaemonArchivesSessions(t *testing.T) {
	dir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-archive-dir", dir)
	if !strings.Contains(out.String(), "monitord: archiving to "+dir) {
		t.Errorf("daemon never announced the archive directory:\n%s", out.String())
	}
	c, err := fleet.Dial(addr, "veh-arch", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	frames := testFrames(t)
	if err := c.Send(frames); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	shutdown()
	if !strings.Contains(out.String(), "monitord: archive:") {
		t.Errorf("no archive stats line after shutdown:\n%s", out.String())
	}

	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		t.Fatalf("OpenCatalog: %v", err)
	}
	var archived uint64
	var verdicts int
	it := cat.Iter(archive.Query{})
	for it.Next() {
		switch rec := it.Record(); rec.Kind {
		case archive.KindFrames:
			archived += uint64(len(rec.Frames))
		case archive.KindVerdict:
			verdicts++
			if len(rec.Verdict.Rules) != len(v.Rules) {
				t.Errorf("archived verdict has %d rules, delivered %d", len(rec.Verdict.Rules), len(v.Rules))
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if archived != uint64(len(frames)) {
		t.Errorf("archive holds %d frames, want %d", archived, len(frames))
	}
	if verdicts != 1 {
		t.Errorf("archive holds %d verdicts, want 1", verdicts)
	}
}

// parkRawSession opens a raw v2+ session on addr, streams one batch,
// and drops the connection, leaving the session parked for resume.
func parkRawSession(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Write(conn, wire.Hello{Version: wire.Version, Vehicle: "veh-park"}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	rec, err := wire.Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rec.(wire.SessionGrant); !ok {
		t.Fatalf("got %T, want SessionGrant", rec)
	}
	if err := wire.Write(conn, wire.SeqBatch{Seq: 1, Frames: testFrames(t)}); err != nil {
		t.Fatal(err)
	}
	for {
		if rec, err = wire.Read(conn); err != nil {
			t.Fatal(err)
		}
		if _, ok := rec.(wire.Ack); ok {
			break
		}
		if _, ok := rec.(wire.SeqEvent); !ok {
			t.Fatalf("got %T, want Ack or SeqEvent", rec)
		}
	}
	conn.Close()
}

// TestDaemonDrainTimeoutBounded pins the -drain-timeout contract: a
// parked mid-stream session cannot hold shutdown hostage. Without a
// ledger the daemon force-closes it at the deadline and reports the
// loss; with one it exits promptly and the session survives in the
// state dir.
func TestDaemonDrainTimeoutBounded(t *testing.T) {
	t.Run("force-close", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		out := &syncBuffer{}
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "300ms", "-resume-grace", "2m"}, out)
		}()
		addr := awaitListening(t, out, errc)
		parkRawSession(t, addr)
		start := time.Now()
		cancel()
		select {
		case err := <-errc:
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("run returned %v, want a shutdown-deadline error", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit within the drain bound")
		}
		if d := time.Since(start); d > 5*time.Second {
			t.Errorf("drain took %v with a 300ms deadline", d)
		}
		if !strings.Contains(out.String(), "force-closed") {
			t.Errorf("no force-close warning:\n%s", out.String())
		}
	})

	t.Run("preserve-with-ledger", func(t *testing.T) {
		stateDir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		out := &syncBuffer{}
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-timeout", "300ms", "-resume-grace", "2m", "-state-dir", stateDir}, out)
		}()
		addr := awaitListening(t, out, errc)
		parkRawSession(t, addr)
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("ledgered drain: %v\n%s", err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit within the drain bound")
		}
		led, err := durable.Open(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		defer led.Close()
		open := 0
		for _, s := range led.State().Sessions {
			if !s.Closed {
				open++
			}
		}
		if open != 1 {
			t.Errorf("ledger preserved %d open sessions across the drain, want 1", open)
		}
	})
}

// awaitListening waits for the daemon goroutine to report its address.
func awaitListening(t *testing.T, out *syncBuffer, errc chan error) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonJournalTornTailRestart proves a daemon killed mid-journal-
// line does not poison the next run: the restart repairs the tail,
// reports the cut, and every surviving line stays parseable.
func TestDaemonJournalTornTailRestart(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "verdicts.jsonl")
	addr, _, shutdown := startDaemon(t, "-journal", journalPath)
	c, err := fleet.Dial(addr, "veh-torn", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	shutdown()

	// The kill -9 we are simulating tears the last line in half.
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"verdict","rules":[{"ru`)
	f.Close()

	addr2, out2, shutdown2 := startDaemon(t, "-journal", journalPath)
	if !strings.Contains(out2.String(), "torn bytes") {
		t.Errorf("restart never reported the journal repair:\n%s", out2.String())
	}
	c2, err := fleet.Dial(addr2, "veh-torn-2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Send(testFrames(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Finish(); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	shutdown2()

	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q unparseable after the torn restart: %v", line, err)
		}
		if rec["kind"] == "verdict" {
			verdicts++
		}
	}
	if verdicts != 2 {
		t.Errorf("journal holds %d verdicts across the restart, want 2", verdicts)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	ctx := context.Background()
	notADir := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-delta", "sideways"},
		{"-rules", "/nonexistent.spec"},
		{"-db", "/nonexistent.netdb"},
		{"-queue", "-1"},
		{"-archive-dir", notADir},
		{"-state-dir", filepath.Join(t.TempDir(), "s"), "-drop"},
		{"-state-dir", notADir},
	} {
		if err := run(ctx, args, &syncBuffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestResolverRefusesArbitraryNames(t *testing.T) {
	res, err := newResolver("strict", sigdb.Vehicle())
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range []string{"", "strict", "relaxed"} {
		if _, err := res(ok); err != nil {
			t.Errorf("resolve(%q): %v", ok, err)
		}
	}
	if _, err := res("/etc/passwd"); err == nil {
		t.Error("resolver accepted an arbitrary path")
	}
}

package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/fleet"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// syncBuffer lets the daemon goroutine and the test share an output
// buffer safely.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on an ephemeral port and returns its
// address plus a shutdown function that asserts a clean exit.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return addr, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon shutdown: %v\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon did not exit:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "sessions") {
			t.Errorf("no final stats printed:\n%s", out.String())
		}
	}
}

// testFrames synthesizes a short ordered capture with one violation
// burst.
func testFrames(t *testing.T) []can.Frame {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < 120; tick++ {
		on := 0.0
		if tick >= 40 && tick < 80 {
			on = 1
		}
		_ = bus.Set(sigdb.SigServiceACC, on)
		_ = bus.Set(sigdb.SigACCEnabled, on)
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatal(err)
		}
	}
	return bus.Log().Frames()
}

func TestDaemonServesSession(t *testing.T) {
	addr, shutdown := startDaemon(t)
	var events []wire.Event
	c, err := fleet.Dial(addr, "veh-1", "", func(e wire.Event) { events = append(events, e) })
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	violated := false
	for _, rv := range v.Rules {
		violated = violated || rv.Violated
	}
	if !violated || len(events) == 0 {
		t.Errorf("expected a violation over the burst: verdict %+v, %d events", v, len(events))
	}
	shutdown()
}

func TestDaemonDrainsActiveSessionOnShutdown(t *testing.T) {
	addr, shutdown := startDaemon(t)
	c, err := fleet.Dial(addr, "veh-1", "strict", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	// No Finish: the daemon's drain must still verdict the session.
	shutdown()
	if _, err := c.Wait(); err != nil {
		t.Fatalf("no verdict from drain: %v", err)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	ctx := context.Background()
	for _, args := range [][]string{
		{"-delta", "sideways"},
		{"-rules", "/nonexistent.spec"},
		{"-db", "/nonexistent.netdb"},
		{"-queue", "-1"},
	} {
		if err := run(ctx, args, &syncBuffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestResolverRefusesArbitraryNames(t *testing.T) {
	res, err := newResolver("strict", sigdb.Vehicle())
	if err != nil {
		t.Fatal(err)
	}
	for _, ok := range []string{"", "strict", "relaxed"} {
		if _, err := res(ok); err != nil {
			t.Errorf("resolve(%q): %v", ok, err)
		}
	}
	if _, err := res("/etc/passwd"); err == nil {
		t.Error("resolver accepted an arbitrary path")
	}
}

// Command monitord is the fleet ingest daemon: a long-running TCP
// service that bolts the passive monitor onto many vehicles at once.
// Each connected vehicle streams its live CAN capture over the binary
// wire protocol and gets incremental violation events and an
// end-of-stream verdict back — the runtime deployment the paper
// sketches ("there is no fundamental reason the monitoring could not
// be done at runtime"), scaled to a fleet.
//
// Usage:
//
//	monitord                                    # strict rules on :9320
//	monitord -addr :9000 -rules relaxed
//	monitord -rules specs/strict.spec -max-sessions 256
//	monitord -db plant.netdb -rules plant.spec  # a different CPS entirely
//	monitord -drop -queue 16                    # shed load instead of blocking
//	monitord -idle-timeout 30s -resume-grace 2m -silence-gap 500ms
//	                                            # field-network hardening knobs
//	monitord -admin 127.0.0.1:9321              # /metrics, /healthz, pprof,
//	                                            # /debug/flight span snapshot
//	monitord -flight-sample 16 -slo-target 50ms # denser tracing, tighter SLO
//	monitord -journal verdicts.jsonl            # append-only event/verdict log
//	monitord -state-dir /var/lib/monitord       # crash-safe: ledger + archive,
//	                                            # sessions survive kill -9
//	monitord -drain-timeout 30s                 # bound the shutdown drain
//	monitord -spec-dir /var/lib/monitord/specs  # durable spec registry: push,
//	                                            # shadow, promote or roll back
//	                                            # rule sets without a restart
//	monitord -spec-auto-promote -spec-max-divergence 0.01
//	                                            # hands-off canary rollout
//	monitord -version                           # print build version and exit
//
// With -spec-dir the admin endpoint grows a /spec/ surface
// (monitorctl spec push/status/promote/rollback drives it): a pushed
// candidate is parse-checked, re-checked offline against the archive
// (-spec-gate-window bounds how far back), then shadow-evaluated next
// to the active spec on live traffic — its verdicts are never
// delivered — until it is promoted under a new spec epoch or rolled
// back because divergence or SLO burn crossed the configured
// thresholds. SIGHUP re-reads -rules and pushes it through the same
// pipeline.
//
// Stream a recorded capture to it with:
//
//	monitorctl -trace capture.canlog -stream localhost:9320 -speed 1
//
// Clients select a rule set in their hello record: "strict", "relaxed"
// or empty for the daemon's -rules default. The daemon drains every
// session gracefully on SIGINT/SIGTERM: queued frames are evaluated,
// verdicts delivered, and the final ingest statistics printed.
//
// The -admin endpoint carries live profiling and operational detail
// with no authentication of its own: bind it to loopback (or an
// otherwise access-controlled address), never the vehicle-facing
// network. /healthz flips to 503 the moment a drain starts, so load
// balancers stop routing before the listener closes; its JSON body
// reports "degraded" (still 200) while the detection-latency SLO is
// burning error budget faster than the objective allows.
//
// The daemon always runs a sampled flight recorder (-flight-sample 0
// disables it): SIGQUIT dumps the span ring and the slowest end-to-end
// traces as JSON to stderr, and `monitorctl -top` renders the same
// data live from the admin endpoint.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/durable"
	"cpsmon/internal/fleet"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/specreg"
	"cpsmon/internal/wire"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "monitord:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("monitord", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":9320", "TCP listen address")
		ruleSpec    = fs.String("rules", "strict", "default rule set: strict, relaxed, or a path to a .spec file")
		dbPath      = fs.String("db", "", "custom network database file; default is the paper's vehicle network")
		maxSessions = fs.Int("max-sessions", 0, "refuse connections over this many concurrent sessions (0 = unlimited)")
		queueDepth  = fs.Int("queue", 0, "per-session ingest queue depth in batches (0 = default)")
		drop        = fs.Bool("drop", false, "shed frames when a session queue is full instead of applying backpressure")
		deltaMode   = fs.String("delta", "aware", "multi-rate difference semantics: aware or naive")
		statsEvery  = fs.Duration("stats-interval", 0, "print ingest statistics at this interval, from the same registry as /metrics (0 = only at shutdown)")
		stateDir    = fs.String("state-dir", "", "crash-safe operation: keep a durable session ledger here and rebuild unfinished sessions from it at startup; implies -archive-dir <state-dir>/archive unless set (empty = off)")
		adminAddr   = fs.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address — bind loopback, e.g. 127.0.0.1:9321 (empty = off)")
		journalPath = fs.String("journal", "", "append every event and verdict as one JSON line to this file (empty = off)")
		journalMax  = fs.Int64("journal-max-size", 64<<20, "rotate the journal to <path>.1 past this many bytes (0 = never)")
		idleTimeout = fs.Duration("idle-timeout", 0, "cut connections silent for this long; resumable sessions park for -resume-grace (0 = never)")
		resumeGrace = fs.Duration("resume-grace", 0, "how long a disconnected session's monitor state awaits a resume (0 = default 30s)")
		silenceGap  = fs.Duration("silence-gap", 0, "emit a gap event when consecutive frame timestamps are further apart than this (0 = off)")
		errorBudget = fs.Int("error-budget", 0, "malformed records tolerated per connection before it is cut (0 = default 16)")
		archiveDir  = fs.String("archive-dir", "", "archive every applied frame run, event and verdict into segment files in this directory (empty = off)")
		archiveSeg  = fs.Int64("archive-segment-size", 0, "archive segment rotation threshold in bytes (0 = default 8MiB)")
		archiveKeep = fs.Duration("archive-retention", 0, "remove sealed archive segments older than this, swept periodically (0 = keep forever)")
		version     = fs.Bool("version", false, "print the build version and exit")
		specDir     = fs.String("spec-dir", "", "spec rollout registry: keep a durable, content-addressed spec store here and serve /spec push/status/promote/rollback on the admin endpoint (empty = off)")
		specGateWin = fs.Duration("spec-gate-window", 0, "how much trailing archived capture time the offline gate re-checks a pushed spec against (0 = the whole archive)")
		specMaxRegr = fs.Int("spec-max-regressions", 0, "most per-rule regressions the offline gate tolerates before refusing a pushed spec")
		specMinBat  = fs.Uint64("spec-min-shadow-batches", 100, "shadow-compared batches required before divergence is judged (and, with -spec-auto-promote, before promotion)")
		specMaxDiv  = fs.Float64("spec-max-divergence", 0.01, "divergent-batch fraction above which a shadowing candidate is rolled back")
		specMaxBurn = fs.Float64("spec-max-slo-burn", 0, "SLO burn fraction above which a shadowing candidate is rolled back (0 = don't tie rollback to the SLO)")
		specAutoPro = fs.Bool("spec-auto-promote", false, "promote a candidate automatically once -spec-min-shadow-batches have compared clean")
		flightEvery = fs.Int("flight-sample", 64, "record per-stage latency spans for every Nth batch into the flight recorder; dump with SIGQUIT or /debug/flight (0 = off)")
		sloTarget   = fs.Duration("slo-target", 100*time.Millisecond, "detection-latency SLO: batches at or under this end-to-end latency are good (0 = no SLO)")
		sloObj      = fs.Float64("slo-objective", 0.99, "fraction of batches that must meet -slo-target before /healthz reports degraded")
		sloWindow   = fs.Duration("slo-window", time.Minute, "rolling window the SLO burn rate is computed over")
	)
	var drainGrace time.Duration
	fs.DurationVar(&drainGrace, "drain-timeout", 10*time.Second, "how long shutdown waits for sessions to drain before force-closing them")
	fs.DurationVar(&drainGrace, "drain", 10*time.Second, "alias for -drain-timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, versionString("monitord"))
		return nil
	}

	db := sigdb.Vehicle()
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		loaded, err := sigdb.ReadFormat(f)
		f.Close()
		if err != nil {
			return err
		}
		db = loaded
	}

	mode := speclang.DeltaUpdateAware
	switch *deltaMode {
	case "aware":
	case "naive":
		mode = speclang.DeltaNaive
	default:
		return fmt.Errorf("unknown -delta %q (want aware or naive)", *deltaMode)
	}

	resolve, err := newResolver(*ruleSpec, db)
	if err != nil {
		return err
	}
	var flt *flight.Recorder
	if *flightEvery > 0 {
		flt = flight.New(flight.Config{SampleEvery: *flightEvery})
	}
	var slo *flight.SLO
	if *sloTarget > 0 {
		slo = flight.NewSLO(*sloTarget, *sloObj, *sloWindow)
	}

	cfg := fleet.Config{
		DB:           db,
		Resolve:      resolve,
		DeltaMode:    mode,
		Triage:       rules.DefaultTriage(),
		MaxSessions:  *maxSessions,
		QueueDepth:   *queueDepth,
		DropWhenFull: *drop,
		IdleTimeout:  *idleTimeout,
		ResumeGrace:  *resumeGrace,
		SilenceGap:   *silenceGap,
		ErrorBudget:  *errorBudget,
		Flight:       flt,
		SLO:          slo,
	}

	var led *durable.Ledger
	if *stateDir != "" {
		if *drop {
			return fmt.Errorf("-drop cannot be combined with -state-dir: shed frames would punch holes in the archived prefix the recovery replay depends on")
		}
		led, err = durable.Open(*stateDir)
		if err != nil {
			return err
		}
		defer led.Close()
		cfg.Ledger = led
		cfg.Epoch = led.Epoch()
		cfg.SessionBase = led.State().MaxSession
		// Spec epochs must stay monotonic across restarts: start from
		// the last promote the ledger saw.
		cfg.SpecEpoch = led.State().SpecEpoch
		if *archiveDir == "" {
			*archiveDir = filepath.Join(*stateDir, "archive")
		}
	}

	var reg *specreg.Registry
	if *specDir != "" {
		reg, err = specreg.OpenRegistry(*specDir)
		if err != nil {
			return err
		}
		defer reg.Close()
		// First boot: store and promote the daemon's default rule set so
		// the active pointer always names a real spec.
		src, err := rulesSource(*ruleSpec)
		if err != nil {
			return err
		}
		if err := seedRegistry(reg, *ruleSpec, src, cfg.SpecEpoch); err != nil {
			return err
		}
		if e := reg.State().ActiveEpoch; e > cfg.SpecEpoch {
			cfg.SpecEpoch = e
		}
		// A previous run may have promoted past the -rules default. The
		// registry is the durable record of what the fleet runs: new
		// default-spec sessions must resume on its active spec, since
		// cfg.SpecEpoch already resumed at the promoted epoch and an
		// epoch must provably name one rule text — stamping it on
		// -rules verdicts would corrupt provenance.
		if st := reg.State(); st.ActiveHash != "" {
			if sp, ok := reg.Get(st.ActiveHash); ok && sp.Source != src {
				f, err := speclang.Parse(sp.Source)
				if err != nil {
					return fmt.Errorf("spec registry: active spec %.12s: %w", st.ActiveHash, err)
				}
				defSet, err := speclang.Compile(f, db.SignalNames())
				if err != nil {
					return fmt.Errorf("spec registry: active spec %.12s: %w", st.ActiveHash, err)
				}
				// Only the unnamed default rides the registry: sessions
				// that name a spec — including the -rules name — stay
				// pinned to what they asked for.
				orig := cfg.Resolve
				cfg.Resolve = func(name string) (*speclang.RuleSet, error) {
					if name == "" {
						return defSet, nil
					}
					return orig(name)
				}
				fmt.Fprintf(out, "monitord: default spec resumed from registry: %s (%.12s, epoch %d)\n",
					sp.Name, sp.Hash, st.ActiveEpoch)
			}
		}
	}

	var journal *obs.Journal
	if *journalPath != "" {
		journal, err = obs.OpenJournal(*journalPath, *journalMax)
		if err != nil {
			return err
		}
		defer journal.Close()
		if n := journal.Repaired(); n > 0 {
			fmt.Fprintf(out, "monitord: journal: cut %d torn bytes left by the previous run\n", n)
		}
		cfg.OnEvent, cfg.OnVerdict = journalHooks(journal, os.Stderr)
	}

	var archiver *archive.Writer
	if *archiveDir != "" {
		archiver, err = archive.OpenWriter(*archiveDir, archive.Options{SegmentBytes: *archiveSeg})
		if err != nil {
			return err
		}
		defer archiver.Close()
		cfg.Archiver = archiver
	}

	srv, err := fleet.NewServer(cfg)
	if err != nil {
		return err
	}
	wire.Instrument(srv.Registry())
	if archiver != nil {
		archive.Instrument(srv.Registry())
		fmt.Fprintf(out, "monitord: archiving to %s\n", archiver.Dir())
		if *archiveKeep > 0 {
			go sweepRetention(ctx, archiver, *archiveKeep, os.Stderr)
		}
	}

	if led != nil {
		durable.Instrument(srv.Registry())
		cat, err := archive.OpenCatalog(*archiveDir)
		if err != nil {
			return err
		}
		rs, err := durable.Recover(led, cat, srv)
		if err != nil {
			return fmt.Errorf("recovery: %w", err)
		}
		fmt.Fprintf(out, "monitord: state dir %s (epoch %d)\n", *stateDir, led.Epoch())
		if rs.SessionsRecovered+rs.SessionsFailed > 0 {
			fmt.Fprintf(out, "monitord: recovery: %d sessions rebuilt (%d already verdicted, %d failed); %d frames replayed, %d orphaned\n",
				rs.SessionsRecovered, rs.SessionsFinalized, rs.SessionsFailed, rs.FramesReplayed, rs.OrphanFrames)
		}
	}

	var ctrl *specreg.Controller
	if reg != nil {
		scfg := specreg.Config{
			Registry:         reg,
			Fleet:            fleetAdapter{srv},
			Validate:         specValidator(db),
			MaxRegressions:   *specMaxRegr,
			MinShadowBatches: *specMinBat,
			MaxDivergence:    *specMaxDiv,
			MaxSLOBurn:       *specMaxBurn,
			AutoPromote:      *specAutoPro,
			Metrics:          srv.Registry(),
		}
		if slo != nil {
			scfg.SLOBurn = slo.Burn
		}
		if *archiveDir != "" {
			scfg.Gate = specGate(*archiveDir, archiver, db, mode, *specGateWin)
		}
		ctrl, err = specreg.NewController(scfg)
		if err != nil {
			return err
		}
		defer ctrl.Close()
		st := reg.State()
		fmt.Fprintf(out, "monitord: spec registry %s (active %.12s epoch %d)\n", *specDir, st.ActiveHash, st.ActiveEpoch)

		// SIGHUP re-reads the -rules selection and pushes it through the
		// rollout pipeline — the spec file equivalent of a config reload,
		// except it gates and shadows instead of swapping blindly.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go func() {
			for range hup {
				src, err := rulesSource(*ruleSpec)
				if err != nil {
					fmt.Fprintln(os.Stderr, "monitord: SIGHUP reload:", err)
					continue
				}
				if specreg.Hash(src) == reg.State().ActiveHash {
					fmt.Fprintf(os.Stderr, "monitord: SIGHUP: %s unchanged, nothing to roll out\n", *ruleSpec)
					continue
				}
				hash, err := ctrl.Push(*ruleSpec, src)
				if err != nil {
					fmt.Fprintln(os.Stderr, "monitord: SIGHUP push:", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "monitord: SIGHUP: pushed %s as candidate %.12s\n", *ruleSpec, hash)
			}
		}()
	}

	// draining flips /healthz to 503 the moment shutdown begins, so
	// health checks stop routing before the listener actually closes.
	var draining atomic.Bool
	var repaired int64
	if journal != nil {
		repaired = journal.Repaired()
	}
	health := func() obs.Health {
		h := obs.Health{RepairedJournalBytes: repaired}
		if slo != nil {
			h.SLOBurn = slo.Burn()
			h.SLOTargetSeconds = slo.Target().Seconds()
			if slo.Degraded() {
				h.State = "degraded"
			}
		}
		if ctrl != nil {
			h.Rollout = ctrl.Status().Phase
			h.SpecEpoch = srv.ActiveEpoch()
		}
		return h
	}
	if *adminAddr != "" {
		ln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin: %w", err)
		}
		acfg := obs.AdminConfig{
			Registry: srv.Registry(),
			Ready:    func() bool { return !draining.Load() },
			Health:   health,
		}
		if flt != nil {
			acfg.Flight = func() any { return flt.Snapshot() }
		}
		if ctrl != nil {
			acfg.Spec = specHandler(ctrl, reg)
		}
		admin := &http.Server{Handler: obs.NewAdmin(acfg)}
		go admin.Serve(ln)
		// The admin endpoint outlives the drain on purpose: /metrics
		// stays scrapeable while sessions settle. It dies with the
		// process.
		fmt.Fprintf(out, "monitord: admin on %s\n", ln.Addr())
	}

	if flt != nil {
		// SIGQUIT dumps the flight recorder instead of killing the
		// process — the in-field "what is the pipeline doing right now"
		// lever when the admin endpoint is off or unreachable.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				dumpFlight(os.Stderr, flt)
			}
		}()
	}

	if err := srv.Listen(*addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "monitord: listening on %s (rules %s)\n", srv.Addr(), *ruleSpec)

	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for done := false; !done; {
			select {
			case <-ticker.C:
				printStats(out, srv.Stats())
			case <-ctx.Done():
				done = true
			}
		}
	} else {
		<-ctx.Done()
	}

	draining.Store(true)
	fmt.Fprintln(out, "monitord: draining sessions")
	sctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	err = srv.Shutdown(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		if led != nil {
			// With a ledger the force-closed sessions are not lost: their
			// grants, watermarks and archived frames survive, and the next
			// start rebuilds them. A slow drain is a warning, not a failure.
			fmt.Fprintln(out, "monitord: drain deadline exceeded; unfinished sessions preserved in the state dir")
			err = nil
		} else {
			fmt.Fprintln(out, "monitord: drain deadline exceeded; remaining sessions force-closed")
		}
	}
	printStats(out, srv.Stats())
	return err
}

// dumpFlight writes the recorder's snapshot — ring contents plus the
// slowest end-to-end traces — as indented JSON, one SIGQUIT at a time.
func dumpFlight(w io.Writer, flt *flight.Recorder) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fmt.Fprintln(w, "monitord: flight recorder dump:")
	if err := enc.Encode(flt.Snapshot()); err != nil {
		fmt.Fprintln(w, "monitord: flight dump:", err)
	}
}

// sweepRetention periodically removes sealed archive segments older
// than keep. The sweep interval tracks the retention window (a quarter
// of it) so segments overstay by at most ~25%, bounded to [15s, 10m].
func sweepRetention(ctx context.Context, w *archive.Writer, keep time.Duration, errOut io.Writer) {
	interval := keep / 4
	if interval < 15*time.Second {
		interval = 15 * time.Second
	}
	if interval > 10*time.Minute {
		interval = 10 * time.Minute
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := w.SweepRetention(keep); err != nil {
				fmt.Fprintln(errOut, "monitord: archive retention:", err)
			}
		}
	}
}

// newResolver builds the session spec resolver: clients may select the
// built-in "strict" or "relaxed" sets, or the empty name for the
// daemon's default — which may be a custom .spec file compiled at
// startup. Arbitrary client-supplied paths are never opened.
func newResolver(def string, db *sigdb.DB) (fleet.SpecResolver, error) {
	defSet, err := loadRules(def, db)
	if err != nil {
		return nil, fmt.Errorf("rules %q: %w", def, err)
	}
	return resolverWithDefault(defSet, def), nil
}

// resolverWithDefault builds the resolver around an already-compiled
// default rule set — the -rules selection at startup, or the registry's
// active spec when a previous run promoted past it.
func resolverWithDefault(defSet *speclang.RuleSet, def string) fleet.SpecResolver {
	return func(name string) (*speclang.RuleSet, error) {
		switch name {
		case "", def:
			return defSet, nil
		case "strict":
			return rules.Strict()
		case "relaxed":
			return rules.Relaxed()
		default:
			return nil, fmt.Errorf("unknown spec (want \"\", %q, \"strict\" or \"relaxed\")", def)
		}
	}
}

func loadRules(spec string, db *sigdb.DB) (*speclang.RuleSet, error) {
	switch spec {
	case "strict":
		return rules.Strict()
	case "relaxed":
		return rules.Relaxed()
	}
	src, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	f, err := speclang.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return speclang.Compile(f, db.SignalNames())
}

func printStats(out io.Writer, st fleet.Stats) {
	fmt.Fprintf(out,
		"monitord: sessions %d active / %d opened / %d closed / %d refused; frames %d ingested / %d dropped / %d rejected; violations %d; avg ingest latency %v\n",
		st.SessionsActive, st.SessionsOpened, st.SessionsClosed, st.SessionsRefused,
		st.FramesIngested, st.FramesDropped, st.FramesRejected,
		st.ViolationsEmitted, st.AvgIngestLatency().Round(time.Microsecond))
	if st.SessionsResumed+st.SessionsReaped+st.RecordsQuarantined+st.DupBatchesDropped+st.GapEvents > 0 {
		fmt.Fprintf(out,
			"monitord: resilience: %d resumed / %d reaped sessions; %d records quarantined; %d duplicate batches dropped; %d gap events\n",
			st.SessionsResumed, st.SessionsReaped, st.RecordsQuarantined, st.DupBatchesDropped, st.GapEvents)
	}
	if st.ArchiveRecords+st.ArchiveDropped+st.ArchiveErrors > 0 {
		fmt.Fprintf(out, "monitord: archive: %d records / %d dropped / %d errors\n",
			st.ArchiveRecords, st.ArchiveDropped, st.ArchiveErrors)
	}
	if st.SessionsRestored+st.SessionsRestoreFailed+st.LedgerErrors > 0 {
		fmt.Fprintf(out, "monitord: durable: %d sessions restored / %d restore failures / %d ledger errors\n",
			st.SessionsRestored, st.SessionsRestoreFailed, st.LedgerErrors)
	}
}

package main

import "runtime/debug"

// versionString renders the -version line from the binary's embedded
// build info: module version plus the VCS revision stamped by the Go
// toolchain, with a +dirty marker for uncommitted builds.
func versionString(cmd string) string {
	version, rev, dirty := "(devel)", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	out := cmd + " " + version
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " (" + rev
		if dirty {
			out += "+dirty"
		}
		out += ")"
	}
	return out
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/obs"
	"cpsmon/internal/wire"
)

// jsonFloat marshals like a float64 but survives the non-finite peaks
// a NaN- or Inf-injected signal produces: JSON has no Inf/NaN literal,
// and one unmarshalable severity must not cost the journal its event
// record. Non-finite values are emitted as the quoted strings "+Inf",
// "-Inf" and "NaN".
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(nil, strconv.FormatFloat(v, 'g', -1, 64)), nil
	}
	return json.Marshal(v)
}

// journalEvent is one event line in the verdict journal: a violation
// opening or closing, or a stream gap, stamped with the wall clock at
// which the daemon produced it. Capture-relative times ride along so
// the journal can be joined back to the recorded trace.
type journalEvent struct {
	TS      string `json:"ts"`
	Kind    string `json:"kind"` // begin, end or gap
	Session uint64 `json:"session"`
	Vehicle string `json:"vehicle,omitempty"`
	Rule    string `json:"rule,omitempty"`
	// AtSec is the event's capture-relative time in seconds: the
	// violation start for begin events, the exclusive end otherwise.
	AtSec float64 `json:"at_s"`
	// Severity is the triage class of a closed violation; Peak its
	// maximum absolute severity over the interval (quoted "+Inf" /
	// "NaN" when an injected signal drove it non-finite).
	Severity string    `json:"severity,omitempty"`
	Peak     jsonFloat `json:"peak,omitempty"`
	Msg      string    `json:"msg,omitempty"`
}

// journalRule is one rule row of a verdict line.
type journalRule struct {
	Rule       string `json:"rule"`
	Violated   bool   `json:"violated"`
	Violations uint32 `json:"violations"`
	Real       uint32 `json:"real"`
	Transient  uint32 `json:"transient"`
	Negligible uint32 `json:"negligible"`
}

// journalVerdict is one verdict line: the session's end-of-stream
// outcome, one row per rule in rule-set order.
type journalVerdict struct {
	TS      string        `json:"ts"`
	Kind    string        `json:"kind"` // always "verdict"
	Session uint64        `json:"session"`
	Vehicle string        `json:"vehicle,omitempty"`
	Rules   []journalRule `json:"rules"`

	FramesIngested uint64 `json:"frames_ingested"`
	FramesDropped  uint64 `json:"frames_dropped"`
	FramesRejected uint64 `json:"frames_rejected"`
}

// journalHooks adapts a journal into the fleet server's event and
// verdict callbacks. Journal write failures (disk full, rotation
// races) must never take sessions down, so they are reported once to
// errOut and otherwise swallowed.
func journalHooks(j *obs.Journal, errOut io.Writer) (
	onEvent func(session uint64, vehicle string, e wire.Event),
	onVerdict func(session uint64, vehicle string, v wire.Verdict),
) {
	var warnOnce sync.Once
	appendRec := func(rec any) {
		if err := j.Append(rec); err != nil {
			warnOnce.Do(func() {
				fmt.Fprintf(errOut, "monitord: journal write failed (suppressing further warnings): %v\n", err)
			})
		}
	}
	now := func() string { return time.Now().UTC().Format(time.RFC3339Nano) }
	onEvent = func(session uint64, vehicle string, e wire.Event) {
		rec := journalEvent{
			TS:      now(),
			Kind:    e.Kind.String(),
			Session: session,
			Vehicle: vehicle,
			Rule:    e.Rule,
			AtSec:   e.Time.Seconds(),
			Msg:     e.Msg,
		}
		if e.Kind == wire.EventEnd {
			rec.Severity = core.Class(e.Class).String()
			rec.Peak = jsonFloat(e.Peak)
		}
		appendRec(rec)
	}
	onVerdict = func(session uint64, vehicle string, v wire.Verdict) {
		rec := journalVerdict{
			TS:             now(),
			Kind:           "verdict",
			Session:        session,
			Vehicle:        vehicle,
			FramesIngested: v.FramesIngested,
			FramesDropped:  v.FramesDropped,
			FramesRejected: v.FramesRejected,
		}
		for _, r := range v.Rules {
			rec.Rules = append(rec.Rules, journalRule{
				Rule: r.Rule, Violated: r.Violated,
				Violations: r.Violations, Real: r.Real,
				Transient: r.Transient, Negligible: r.Negligible,
			})
		}
		appendRec(rec)
	}
	return onEvent, onVerdict
}

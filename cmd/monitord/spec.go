package main

// Spec rollout wiring: the -spec-dir registry, the rollout controller
// with its offline recheck gate, and the /spec/* admin surface that
// monitorctl's spec subcommands drive.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/core"
	"cpsmon/internal/fleet"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/specreg"
)

// fleetAdapter narrows *fleet.Server to specreg.Fleet. specreg is
// arch-pinned below the fleet (offline tooling links it without the
// server), so the stats type is converted here rather than shared.
type fleetAdapter struct{ srv *fleet.Server }

func (a fleetAdapter) BeginShadow(hash, source string) error { return a.srv.BeginShadow(hash, source) }
func (a fleetAdapter) AbortShadow(hash string) error         { return a.srv.AbortShadow(hash) }
func (a fleetAdapter) PromoteShadow(hash string, epoch uint64) error {
	return a.srv.PromoteShadow(hash, epoch)
}
func (a fleetAdapter) ActiveEpoch() uint64 { return a.srv.ActiveEpoch() }
func (a fleetAdapter) ShadowStats() (specreg.ShadowStats, bool) {
	st, ok := a.srv.ShadowStats()
	return specreg.ShadowStats{
		Hash:             st.Hash,
		Promoted:         st.Promoted,
		Epoch:            st.Epoch,
		Sessions:         st.Sessions,
		Batches:          st.Batches,
		DivergentBatches: st.DivergentBatches,
		Divergences:      st.Divergences,
		Errors:           st.Errors,
	}, ok
}

// rulesSource returns the spec source text behind a -rules selection:
// the built-in strict/relaxed sources, or the named file's contents.
func rulesSource(spec string) (string, error) {
	switch spec {
	case "strict":
		return rules.StrictSource, nil
	case "relaxed":
		return rules.RelaxedSource, nil
	}
	b, err := os.ReadFile(spec)
	return string(b), err
}

// specValidator pre-checks a pushed source: parse plus compile against
// the daemon's network database, so a typo is refused before anything
// durable happens.
func specValidator(db *sigdb.DB) func(string) error {
	return func(source string) error {
		f, err := speclang.Parse(source)
		if err != nil {
			return err
		}
		_, err = speclang.Compile(f, db.SignalNames())
		return err
	}
}

// specGate builds the controller's offline gate: flush the archive
// tail, re-check the candidate against the archived history (bounded to
// the trailing window when one is set), and report per-rule regressions
// and fixes. The catalog is reopened per gate so freshly sealed
// segments are seen.
func specGate(dir string, archiver *archive.Writer, db *sigdb.DB, mode speclang.DeltaMode, window time.Duration) func(string) (specreg.GateResult, error) {
	return func(source string) (specreg.GateResult, error) {
		f, err := speclang.Parse(source)
		if err != nil {
			return specreg.GateResult{}, err
		}
		rs, err := speclang.Compile(f, db.SignalNames())
		if err != nil {
			return specreg.GateResult{}, err
		}
		if archiver != nil {
			if err := archiver.Flush(); err != nil {
				return specreg.GateResult{}, err
			}
		}
		cat, err := archive.OpenCatalog(dir)
		if err != nil {
			return specreg.GateResult{}, err
		}
		var opt recheck.Options
		if window > 0 {
			var tmax time.Duration
			for _, s := range cat.Segments() {
				if s.TMax > tmax {
					tmax = s.TMax
				}
			}
			if tmax > window {
				opt.From = tmax - window
			}
		}
		rep, err := recheck.Run(cat, db, core.Config{Rules: rs, DeltaMode: mode, Triage: rules.DefaultTriage()}, opt)
		if err != nil {
			return specreg.GateResult{}, err
		}
		return specreg.GateResult{
			Sessions:    rep.Checked,
			Regressions: rep.Regressions,
			Fixes:       rep.Fixes,
			Detail: fmt.Sprintf("%d sessions rechecked, %d frames replayed: %d regressions, %d fixes",
				rep.Checked, rep.FramesReplayed, rep.Regressions, rep.Fixes),
		}, nil
	}
}

// seedRegistry makes a fresh registry's active pointer name a real
// spec: on first boot the daemon's default rule set is stored and
// promoted, at an epoch continuing the ledger's count so epochs stay
// monotonic even if the registry directory was recreated.
func seedRegistry(reg *specreg.Registry, name, source string, ledgerEpoch uint64) error {
	if reg.State().ActiveEpoch != 0 {
		return nil
	}
	hash, err := reg.Put(name, source)
	if err != nil {
		return err
	}
	epoch := ledgerEpoch
	if epoch == 0 {
		epoch = 1
	}
	return reg.Promote(hash, epoch)
}

// specListEntry is one registry spec in the /spec/status reply.
type specListEntry struct {
	Hash      string `json:"hash"`
	Name      string `json:"name"`
	Active    bool   `json:"active,omitempty"`
	Candidate bool   `json:"candidate,omitempty"`
}

// specStatusReply is the /spec/status body: the rollout snapshot plus
// the registry's stored specs in insertion order.
type specStatusReply struct {
	Status specreg.Status  `json:"status"`
	Specs  []specListEntry `json:"specs"`
}

// maxSpecBody bounds a pushed spec source; real specs are a few KiB.
const maxSpecBody = 1 << 20

// specHandler serves the rollout surface under /spec/:
//
//	POST /spec/push?name=N   — body is the spec source; gates and shadows it
//	GET  /spec/status        — rollout phase, shadow counters, stored specs
//	POST /spec/promote       — swap the shadowing candidate in
//	POST /spec/rollback?reason=R — withdraw the shadowing candidate
//
// Like the rest of the admin mux it performs no authentication; the
// -admin address must be loopback or otherwise access-controlled.
func specHandler(ctrl *specreg.Controller, reg *specreg.Registry) http.Handler {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
	status := func() specStatusReply {
		st := reg.State()
		rep := specStatusReply{Status: ctrl.Status(), Specs: []specListEntry{}}
		for _, s := range reg.Specs() {
			rep.Specs = append(rep.Specs, specListEntry{
				Hash:      s.Hash,
				Name:      s.Name,
				Active:    s.Hash == st.ActiveHash,
				Candidate: s.Hash == st.CandidateHash,
			})
		}
		return rep
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/spec/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, status())
	})
	mux.HandleFunc("/spec/push", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fail(w, http.StatusMethodNotAllowed, fmt.Errorf("spec push is a POST"))
			return
		}
		src, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBody+1))
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		if len(src) > maxSpecBody {
			fail(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec source over %d bytes", maxSpecBody))
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			name = "pushed"
		}
		hash, err := ctrl.Push(name, string(src))
		if err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"hash": hash})
	})
	mux.HandleFunc("/spec/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fail(w, http.StatusMethodNotAllowed, fmt.Errorf("spec promote is a POST"))
			return
		}
		if err := ctrl.Promote(); err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, status())
	})
	mux.HandleFunc("/spec/rollback", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			fail(w, http.StatusMethodNotAllowed, fmt.Errorf("spec rollback is a POST"))
			return
		}
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "operator rollback"
		}
		if err := ctrl.Rollback(reason); err != nil {
			fail(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, status())
	})
	return mux
}

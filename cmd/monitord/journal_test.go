package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpsmon/internal/obs"
	"cpsmon/internal/wire"
)

// TestJournalHooksSurviveNonFinitePeaks pins a failure found in the
// field: a NaN-injected signal drives a violation's peak severity to
// +Inf, which encoding/json refuses to marshal — every such end event
// silently vanished from the journal. Non-finite peaks must journal as
// quoted strings, losing no records.
func TestJournalHooksSurviveNonFinitePeaks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := obs.OpenJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	var warnings strings.Builder
	onEvent, onVerdict := journalHooks(j, &warnings)

	for _, peak := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), 0.12} {
		onEvent(1, "veh-1", wire.Event{Kind: wire.EventEnd, Rule: "Rule5", Peak: peak})
	}
	onEvent(1, "veh-1", wire.Event{Kind: wire.EventBegin, Rule: "Rule5"})
	onVerdict(1, "veh-1", wire.Verdict{Rules: []wire.RuleVerdict{{Rule: "Rule5", Violated: true}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if warnings.Len() != 0 {
		t.Errorf("journal hooks warned: %s", warnings.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("journal holds %d lines, want 6:\n%s", len(lines), data)
	}
	var peaks []any
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec["kind"] == "end" {
			peaks = append(peaks, rec["peak"])
		}
	}
	want := []any{"+Inf", "-Inf", "NaN", 0.12}
	if len(peaks) != len(want) {
		t.Fatalf("journal holds %d end lines, want %d", len(peaks), len(want))
	}
	for i, p := range peaks {
		if p != want[i] {
			t.Errorf("peak %d journaled as %v (%T), want %v", i, p, p, want[i])
		}
	}
}

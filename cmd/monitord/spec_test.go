package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cpsmon/internal/fleet"
	"cpsmon/internal/rules"
	"cpsmon/internal/specreg"
)

// adminAddr scrapes the admin endpoint's address out of the daemon's
// startup output.
func adminAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := adminRE.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its admin address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// specStatusBody mirrors the /spec/status reply.
type specStatusBody struct {
	Status specreg.Status `json:"status"`
	Specs  []struct {
		Hash      string `json:"hash"`
		Name      string `json:"name"`
		Active    bool   `json:"active"`
		Candidate bool   `json:"candidate"`
	} `json:"specs"`
}

func specStatusOf(t *testing.T, admin string) specStatusBody {
	t.Helper()
	resp, err := http.Get("http://" + admin + "/spec/status")
	if err != nil {
		t.Fatalf("GET /spec/status: %v", err)
	}
	defer resp.Body.Close()
	var st specStatusBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /spec/status: %v", err)
	}
	return st
}

// specPushTo pushes source through /spec/push and returns the reply
// and status code.
func specPushTo(t *testing.T, admin, name, source string) (map[string]string, int) {
	t.Helper()
	resp, err := http.Post(
		fmt.Sprintf("http://%s/spec/push?name=%s", admin, name),
		"text/plain", strings.NewReader(source))
	if err != nil {
		t.Fatalf("POST /spec/push: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /spec/push reply: %v", err)
	}
	return body, resp.StatusCode
}

func specPostOK(t *testing.T, admin, path string) {
	t.Helper()
	resp, err := http.Post("http://"+admin+path, "text/plain", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %s (%s)", path, resp.Status, e["error"])
	}
}

// TestDaemonSpecRolloutLifecycle drives the whole surface over HTTP:
// seeded registry, push, shadow on a live session, promote, and the
// epoch stamp on verdicts either side of the promote.
func TestDaemonSpecRolloutLifecycle(t *testing.T) {
	specDir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-spec-dir", specDir, "-admin", "127.0.0.1:0")
	admin := adminAddr(t, out)

	// First boot seeded the default rule set at epoch 1.
	st := specStatusOf(t, admin)
	if st.Status.Phase != "idle" || st.Status.ActiveEpoch != 1 {
		t.Fatalf("seeded status = %+v", st.Status)
	}
	if len(st.Specs) != 1 || !st.Specs[0].Active || st.Specs[0].Name != "strict" {
		t.Fatalf("seeded specs = %+v", st.Specs)
	}
	if st.Status.ActiveHash != specreg.Hash(rules.StrictSource) {
		t.Fatalf("seeded active hash = %s", st.Status.ActiveHash)
	}

	// Push the relaxed source; no archive means no offline gate, so it
	// goes straight to shadow.
	body, code := specPushTo(t, admin, "relaxed", rules.RelaxedSource)
	if code != http.StatusOK || body["hash"] == "" {
		t.Fatalf("push: status %d, body %v", code, body)
	}
	hash := body["hash"]
	if st := specStatusOf(t, admin); st.Status.Phase != "shadowing" {
		t.Fatalf("post-push phase = %s", st.Status.Phase)
	}

	// A session opened now dual-evaluates; its delivered verdict is the
	// active spec's, stamped with the pre-promote epoch.
	c, err := fleet.Dial(addr, "veh-shadow", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if v.SpecEpoch != 1 {
		t.Fatalf("verdict before promote stamped epoch %d, want 1", v.SpecEpoch)
	}
	st = specStatusOf(t, admin)
	if st.Status.Shadow == nil || st.Status.Shadow.Batches == 0 {
		t.Fatalf("no shadow-compared batches after a full session: %+v", st.Status.Shadow)
	}

	// /healthz carries the rollout phase and active epoch.
	resp, err := http.Get("http://" + admin + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h struct {
		Rollout   string `json:"rollout"`
		SpecEpoch uint64 `json:"spec_epoch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil || h.Rollout != "shadowing" || h.SpecEpoch != 1 {
		t.Fatalf("healthz rollout = %+v (%v)", h, err)
	}

	specPostOK(t, admin, "/spec/promote")
	st = specStatusOf(t, admin)
	if st.Status.Phase != "promoted" || st.Status.ActiveEpoch != 2 || st.Status.ActiveHash != hash {
		t.Fatalf("post-promote status = %+v", st.Status)
	}

	// A session opened after the promote runs the new spec and stamps
	// the new epoch.
	c2, err := fleet.Dial(addr, "veh-after", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c2.Close()
	if err := c2.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v2, err := c2.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if v2.SpecEpoch != 2 {
		t.Fatalf("verdict after promote stamped epoch %d, want 2", v2.SpecEpoch)
	}
	shutdown()

	// The registry is durable: a reopen sees the promoted pointer.
	reg, err := specreg.OpenRegistry(specDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if rs := reg.State(); rs.ActiveHash != hash || rs.ActiveEpoch != 2 {
		t.Fatalf("reopened registry state = %+v", rs)
	}
}

// TestDaemonSpecRollbackDeliversNoCandidateVerdicts pins the shadow
// guarantee end to end: a candidate pushed, evaluated against live
// traffic and rolled back never delivers a verdict, and the session's
// own verdict stays the active spec's.
func TestDaemonSpecRollbackDeliversNoCandidateVerdicts(t *testing.T) {
	specDir := t.TempDir()
	addr, out, shutdown := startDaemon(t, "-spec-dir", specDir, "-admin", "127.0.0.1:0")
	admin := adminAddr(t, out)

	if _, code := specPushTo(t, admin, "relaxed", rules.RelaxedSource); code != http.StatusOK {
		t.Fatalf("push status %d", code)
	}
	c, err := fleet.Dial(addr, "veh-rb", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	specPostOK(t, admin, "/spec/rollback?reason=operator+test")
	st := specStatusOf(t, admin)
	if st.Status.Phase != "rolled-back" || st.Status.Reason == "" {
		t.Fatalf("post-rollback status = %+v", st.Status)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if v.SpecEpoch != 1 {
		t.Fatalf("verdict after rollback stamped epoch %d, want 1 (active spec)", v.SpecEpoch)
	}
	shutdown()
}

// TestDaemonSpecGateRunsRecheck pushes against a daemon with an
// archive: the offline gate must re-check the archived session before
// the candidate reaches shadow.
func TestDaemonSpecGateRunsRecheck(t *testing.T) {
	archiveDir := t.TempDir()
	specDir := t.TempDir()
	addr, out, shutdown := startDaemon(t,
		"-spec-dir", specDir, "-admin", "127.0.0.1:0", "-archive-dir", archiveDir)
	admin := adminAddr(t, out)

	c, err := fleet.Dial(addr, "veh-hist", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// The archive pump is asynchronous: wait for the session's verdict
	// to reach the writer (the gate's own flush then lands it on disk)
	// before gating against it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if scrapeAdmin(t, "http://"+admin)[`cpsmon_archive_appends_total{kind="verdict"}`] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("archived verdict never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if body, code := specPushTo(t, admin, "relaxed", rules.RelaxedSource); code != http.StatusOK {
		t.Fatalf("push status %d: %v", code, body)
	}
	st := specStatusOf(t, admin)
	if st.Status.Phase != "shadowing" {
		t.Fatalf("post-push phase = %s (err %q)", st.Status.Phase, st.Status.Err)
	}
	if st.Status.Gate == nil || st.Status.Gate.Sessions != 1 || !strings.Contains(st.Status.Gate.Detail, "rechecked") {
		t.Fatalf("gate result = %+v", st.Status.Gate)
	}
	shutdown()
}

// TestDaemonSpecPushRefusesBrokenSource: a candidate that does not
// compile is refused over HTTP and stores nothing.
func TestDaemonSpecPushRefusesBrokenSource(t *testing.T) {
	specDir := t.TempDir()
	_, out, shutdown := startDaemon(t, "-spec-dir", specDir, "-admin", "127.0.0.1:0")
	admin := adminAddr(t, out)
	body, code := specPushTo(t, admin, "broken", "rule nope { this is not speclang }")
	if code == http.StatusOK || body["error"] == "" {
		t.Fatalf("broken push accepted: status %d, body %v", code, body)
	}
	st := specStatusOf(t, admin)
	if len(st.Specs) != 1 { // only the seeded default
		t.Fatalf("broken push stored a spec: %+v", st.Specs)
	}
	shutdown()
}

// TestDaemonSIGHUPPushesRulesFile: editing the -rules file and sending
// SIGHUP pushes the new text through the rollout pipeline instead of
// blind-swapping it.
func TestDaemonSIGHUPPushesRulesFile(t *testing.T) {
	ruleFile := filepath.Join(t.TempDir(), "rules.spec")
	if err := os.WriteFile(ruleFile, []byte(rules.StrictSource), 0o644); err != nil {
		t.Fatal(err)
	}
	specDir := t.TempDir()
	_, out, shutdown := startDaemon(t,
		"-spec-dir", specDir, "-admin", "127.0.0.1:0", "-rules", ruleFile)
	admin := adminAddr(t, out)

	if err := os.WriteFile(ruleFile, []byte(rules.RelaxedSource), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := specStatusOf(t, admin)
		if st.Status.Phase == "shadowing" {
			if st.Status.Hash != specreg.Hash(rules.RelaxedSource) {
				t.Fatalf("SIGHUP pushed hash %s, want the edited file's", st.Status.Hash)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP never started a rollout: %+v", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	shutdown()
}

// TestDaemonSpecRegistryResumesPromotedDefault: a promote survives a
// restart in full. The restarted daemon resumes the registry's epoch,
// so it must resume the registry's active spec as its default too —
// running the -rules default while stamping the promoted epoch would
// attach an epoch that durably names one rule text to verdicts
// produced by another.
func TestDaemonSpecRegistryResumesPromotedDefault(t *testing.T) {
	specDir := t.TempDir()
	// One rule with a name no built-in spec uses, so the delivered
	// verdict's rule rows identify which spec actually ran.
	const tinySpec = "spec Tight { assert !ACCEnabled }"

	_, out, shutdown := startDaemon(t, "-spec-dir", specDir, "-admin", "127.0.0.1:0")
	admin := adminAddr(t, out)
	if body, code := specPushTo(t, admin, "tight", tinySpec); code != http.StatusOK {
		t.Fatalf("push: status %d, body %v", code, body)
	}
	specPostOK(t, admin, "/spec/promote")
	if st := specStatusOf(t, admin); st.Status.Phase != "promoted" || st.Status.ActiveEpoch != 2 {
		t.Fatalf("post-promote status = %+v", st.Status)
	}
	shutdown()

	addr, out2, shutdown2 := startDaemon(t, "-spec-dir", specDir, "-admin", "127.0.0.1:0")
	defer shutdown2()
	if !strings.Contains(out2.String(), "default spec resumed from registry: tight") {
		t.Fatalf("restart did not resume the registry's active spec:\n%s", out2.String())
	}

	// A default-spec session on the restarted daemon runs the promoted
	// spec, not the -rules default, and stamps the promoted epoch.
	c, err := fleet.Dial(addr, "veh-resumed", "", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v, err := c.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if v.SpecEpoch != 2 {
		t.Fatalf("post-restart verdict stamped epoch %d, want 2", v.SpecEpoch)
	}
	if len(v.Rules) != 1 || v.Rules[0].Rule != "Tight" {
		t.Fatalf("post-restart default session ran the wrong spec: %+v", v.Rules)
	}

	// Explicitly named built-ins stay pinned and unaffected.
	c2, err := fleet.Dial(addr, "veh-pinned", "strict", nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c2.Close()
	if err := c2.Send(testFrames(t)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	v2, err := c2.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if len(v2.Rules) <= 1 {
		t.Fatalf("pinned strict session got the promoted spec: %+v", v2.Rules)
	}
}

// TestVersionFlag: -version prints and exits cleanly without starting
// a listener.
func TestVersionFlag(t *testing.T) {
	out := &syncBuffer{}
	if err := run(t.Context(), []string{"-version"}, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "monitord") {
		t.Fatalf("-version output = %q", out.String())
	}
}

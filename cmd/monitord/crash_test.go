package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/faultnet"
	"cpsmon/internal/fleet"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/wire"
)

// TestMain lets the test binary re-exec itself as a real monitord
// process: the crash harness SIGKILLs that child, which is the only
// honest way to exercise the durable ledger (an in-process "crash"
// still runs deferred flushes a kill -9 never would).
func TestMain(m *testing.M) {
	if os.Getenv("MONITORD_CRASH_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "monitord:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// violatingLog renders one HIL follow scenario with a sensor-blindness
// window, the fault kind known to close real violations under the
// strict spec.
func violatingLog(t testing.TB, seed int64, dur time.Duration) *can.Log {
	t.Helper()
	frac := func(num, den time.Duration) time.Duration {
		return dur * num / den / sigdb.FastPeriod * sigdb.FastPeriod
	}
	cfg := scenario.Follow(seed, dur)
	cfg.TypeChecking = false
	bench, err := hil.New(cfg)
	if err != nil {
		t.Fatalf("hil.New: %v", err)
	}
	from, to := frac(1, 3), frac(2, 3)
	blind := []string{sigdb.SigVehicleAhead, sigdb.SigTargetRange, sigdb.SigTargetRelVel}
	onTick := func(now time.Duration, b *hil.Bench) error {
		switch now {
		case from:
			for _, name := range blind {
				if err := b.SetInjection(name, 0); err != nil {
					return err
				}
			}
		case to:
			for _, name := range blind {
				b.ClearInjection(name)
			}
		}
		return nil
	}
	if err := bench.Run(dur, onTick); err != nil {
		t.Fatalf("bench.Run: %v", err)
	}
	return bench.Log()
}

func offlineReport(t testing.TB, log *can.Log) *core.Report {
	t.Helper()
	rs, err := rules.Strict()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{Rules: rs, Triage: rules.DefaultTriage()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.CheckLog(log, sigdb.Vehicle())
	if err != nil {
		t.Fatalf("CheckLog: %v", err)
	}
	return rep
}

// freePort reserves a loopback address that stays stable across the
// daemon restarts of one test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// monitordChild is one process life of the re-exec'd daemon.
type monitordChild struct {
	cmd *exec.Cmd
	out *syncBuffer
}

// startChild launches the daemon subprocess on addr with stateDir and
// waits until it reports the listener (which, with -state-dir, means
// ledger open and recovery replay both finished).
func startChild(t *testing.T, addr, stateDir string) *monitordChild {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-addr", addr, "-state-dir", stateDir,
		"-rules", "strict", "-resume-grace", "2m", "-drain-timeout", "10s")
	cmd.Env = append(os.Environ(), "MONITORD_CRASH_CHILD=1")
	out := &syncBuffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	ch := &monitordChild{cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("child never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ch
}

// killerConn counts uplink bytes and fires once when the stream crosses
// the seeded kill offset.
type killerConn struct {
	net.Conn
	sent *atomic.Int64
	at   int64
	fire func()
	once *sync.Once
}

func (k *killerConn) Write(p []byte) (int, error) {
	n, err := k.Conn.Write(p)
	if k.sent.Add(int64(n)) >= k.at {
		k.once.Do(k.fire)
	}
	return n, err
}

// TestCrashRecoverySeeded is the PR's acceptance harness: at each of 16
// seeded uplink byte offsets, SIGKILL a real monitord subprocess
// mid-stream (under faultnet chaos on top), restart it on the same
// state dir, and prove the resumed session still yields the offline
// ground truth — streamed violations byte-for-byte, the verdict exactly
// once, every frame archived exactly once.
func TestCrashRecoverySeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix is minutes of work; run without -short")
	}
	dur := 50 * time.Second
	log := violatingLog(t, 7, dur)
	offline := offlineReport(t, log)
	// Every frame encodes to at least 20 uplink bytes, so offsets spread
	// over [10%, 85%] of this floor always land mid-stream.
	floor := int64(log.Len()) * 20

	const seeds = 16
	for i := 0; i < seeds; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%02d", i), func(t *testing.T) {
			t.Parallel()
			killAt := floor * (10 + 75*int64(i)/(seeds-1)) / 100
			runCrashSeed(t, log, offline, killAt, i)
		})
	}
}

// TestCrashRecoverySmoke keeps one subprocess crash in the -short tier
// so the path never rots between full runs.
func TestCrashRecoverySmoke(t *testing.T) {
	dur := 50 * time.Second
	log := violatingLog(t, 42, dur)
	offline := offlineReport(t, log)
	runCrashSeed(t, log, offline, int64(log.Len())*20/2, 3)
}

func runCrashSeed(t *testing.T, log *can.Log, offline *core.Report, killAt int64, seed int) {
	offlineViolations := 0
	for _, rr := range offline.Rules {
		offlineViolations += len(rr.Result.Violations)
	}
	if offlineViolations == 0 {
		t.Fatal("ground-truth trace has no violations; the equivalence assertions would be vacuous")
	}
	stateDir := t.TempDir()
	addr := freePort(t)

	var (
		childMu sync.Mutex
		child   = startChild(t, addr, stateDir)
	)
	// One faultnet disconnect before the kill offset, so the run
	// exercises a soft resume and then the hard crash on top of it.
	chaos := &faultnet.Dialer{Schedules: [][]faultnet.Fault{
		{{Op: faultnet.Disconnect, Dir: faultnet.Send, Offset: killAt / 2}},
	}}

	var sent atomic.Int64
	var killOnce sync.Once
	killed := make(chan struct{})
	dial := func(target string) (net.Conn, error) {
		conn, err := chaos.Dial(target)
		if err != nil {
			return nil, err
		}
		return &killerConn{Conn: conn, sent: &sent, at: killAt, once: &killOnce, fire: func() {
			childMu.Lock()
			child.cmd.Process.Kill()
			childMu.Unlock()
			close(killed)
		}}, nil
	}

	var mu sync.Mutex
	var events []wire.Event
	c, err := fleet.DialOptions(addr, fleet.Options{
		Vehicle: fmt.Sprintf("veh-crash-%d", seed),
		Spec:    "strict",
		OnEvent: func(e wire.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
		Dial:         dial,
		MaxRetries:   60,
		Backoff:      25 * time.Millisecond,
		MaxBackoff:   250 * time.Millisecond,
		StallTimeout: 3 * time.Second,
		Seed:         int64(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type res struct {
		v   *wire.Verdict
		err error
	}
	done := make(chan res, 1)
	go func() {
		v, err := c.Replay(log, 0)
		done <- res{v, err}
	}()

	// Restart the daemon on the same state dir once the kill fires. The
	// client meanwhile spins in its retry loop against a dead port.
	select {
	case <-killed:
	case r := <-done:
		t.Fatalf("replay finished before the seeded kill at byte %d: %+v %v", killAt, r.v, r.err)
	case <-time.After(60 * time.Second):
		t.Fatalf("kill at byte %d never fired", killAt)
	}
	childMu.Lock()
	child.cmd.Wait()
	child = startChild(t, addr, stateDir)
	childMu.Unlock()

	r := <-done
	if r.err != nil {
		t.Fatalf("replay across the crash: %v\nchild:\n%s", r.err, child.out.String())
	}
	total := uint64(log.Len())
	if r.v.FramesIngested != total {
		t.Errorf("verdict ingested %d frames, sent %d", r.v.FramesIngested, total)
	}
	if r.v.FramesDropped != 0 || r.v.FramesRejected != 0 {
		t.Errorf("dropped=%d rejected=%d, want 0/0", r.v.FramesDropped, r.v.FramesRejected)
	}

	// Streamed events must equal the offline ground truth exactly once,
	// byte for byte — across the process death.
	mu.Lock()
	streamed := make(map[string][]wire.Event)
	begins := make(map[string]int)
	for _, e := range events {
		switch e.Kind {
		case wire.EventBegin:
			begins[e.Rule]++
		case wire.EventEnd:
			streamed[e.Rule] = append(streamed[e.Rule], e)
		default:
			t.Errorf("unexpected event kind %d (%+v)", e.Kind, e)
		}
	}
	mu.Unlock()
	for ri, rr := range offline.Rules {
		name := rr.Name()
		want := rr.Result.Violations
		got := streamed[name]
		if len(got) != len(want) {
			t.Fatalf("rule %s: streamed %d violations, offline %d (duplicate or lost events across the crash)",
				name, len(got), len(want))
		}
		if begins[name] != len(want) {
			t.Errorf("rule %s: %d begin events for %d violations", name, begins[name], len(want))
		}
		for vi, v := range want {
			wantEv := wire.Event{
				Kind: wire.EventEnd, Rule: name, Time: v.End,
				StartStep: uint32(v.StartStep), EndStep: uint32(v.EndStep),
				Start: v.Start, End: v.End, Peak: v.Peak, Msg: v.Msg,
				Class: uint8(rr.Classes[vi]),
			}
			if !bytes.Equal(wire.Marshal(got[vi]), wire.Marshal(wantEv)) {
				t.Errorf("rule %s violation %d: wire bytes differ from offline", name, vi)
			}
		}
		rv := r.v.Rules[ri]
		if rv.Rule != name || int(rv.Violations) != len(want) {
			t.Errorf("rule %s: verdict row %+v, offline %d violations", name, rv, len(want))
		}
	}

	// A clean SIGTERM must drain and exit zero; its output proves the
	// restart actually rebuilt the session rather than starting fresh.
	childMu.Lock()
	child.cmd.Process.Signal(syscall.SIGTERM)
	err = child.cmd.Wait()
	outStr := child.out.String()
	childMu.Unlock()
	if err != nil {
		t.Fatalf("restarted child exited dirty: %v\n%s", err, outStr)
	}
	if !strings.Contains(outStr, "recovery: 1 sessions rebuilt") {
		t.Errorf("restarted child never reported the rebuild:\n%s", outStr)
	}

	// The archive — written across two process lives, with the client
	// resending unacknowledged batches — must hold every frame exactly
	// once and exactly one verdict.
	cat, err := archive.OpenCatalog(filepath.Join(stateDir, "archive"))
	if err != nil {
		t.Fatal(err)
	}
	var frames uint64
	verdicts := 0
	it := cat.Iter(archive.Query{})
	for it.Next() {
		switch rec := it.Record(); rec.Kind {
		case archive.KindFrames:
			frames += uint64(len(rec.Frames))
		case archive.KindVerdict:
			verdicts++
			if !bytes.Equal(wire.Marshal(rec.Verdict), wire.Marshal(*r.v)) {
				t.Error("archived verdict differs from the delivered one")
			}
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if frames != total {
		t.Errorf("archive holds %d frames, want exactly %d (duplicates or loss across the crash)", frames, total)
	}
	if verdicts != 1 {
		t.Errorf("archive holds %d verdicts, want exactly 1", verdicts)
	}
}

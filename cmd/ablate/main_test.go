package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated ablation")
	}
	if err := run([]string{"-exp", "warmup"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nosuch"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

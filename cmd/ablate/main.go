// Command ablate runs the discussion-section experiments: the design
// issues the paper identifies as remaining research challenges, each
// turned into a measurable ablation.
//
//	multirate  — naive vs update-aware differences over slow frames (V.C.1)
//	warmup     — acquisition-jump false alarms with/without warm-up (V.C.2)
//	typecheck  — HIL type checking masking real-vehicle hazards (V.C.3)
//	intent     — intent-approximation threshold tradeoff (V.A)
//	latency    — online decision latency per rule (runtime monitoring)
//
// Usage:
//
//	ablate                 # all experiments
//	ablate -exp multirate -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)
import "cpsmon/internal/campaign"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	var (
		exp  = fs.String("exp", "all", "experiment: multirate, warmup, typecheck, intent, all")
		seed = fs.Int64("seed", 7, "experiment seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	type renderer interface{ Render(io.Writer) error }
	runners := map[string]func(int64) (renderer, error){
		"multirate": func(s int64) (renderer, error) { return campaign.RunMultiRateAblation(s) },
		"warmup":    func(s int64) (renderer, error) { return campaign.RunWarmupAblation(s) },
		"typecheck": func(s int64) (renderer, error) { return campaign.RunTypeCheckAblation(s) },
		"intent":    func(s int64) (renderer, error) { return campaign.RunIntentAblation(s) },
		"latency":   func(s int64) (renderer, error) { return campaign.RunLatencyAblation(s) },
	}
	order := []string{"multirate", "warmup", "typecheck", "intent", "latency"}
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		order = []string{*exp}
	}
	for i, name := range order {
		if i > 0 {
			fmt.Println()
		}
		res, err := runners[name](*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

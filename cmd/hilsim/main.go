// Command hilsim runs a scenario on the simulated HIL bench and writes
// the captured bus traffic, optionally with fault injection.
//
// Usage:
//
//	hilsim -scenario follow -duration 2m -out capture.canlog
//	hilsim -scenario drivecycle -seed 7 -out drive.csv
//	hilsim -scenario follow -inject TargetRange=4294967296.000001 -at 30s -hold 20s -out bad.canlog
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hilsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hilsim", flag.ContinueOnError)
	var (
		name     = fs.String("scenario", "follow", "scenario: follow, cutin, approach, drivecycle")
		seed     = fs.Int64("seed", 1, "random seed")
		duration = fs.Duration("duration", 2*time.Minute, "simulation length (drivecycle uses its fixed length)")
		out      = fs.String("out", "capture.canlog", "output file: .canlog (frames) or .csv (signal trace)")
		injectKV = fs.String("inject", "", "optional injection, signal=value (e.g. TargetRange=NaN)")
		at       = fs.Duration("at", 30*time.Second, "injection start time")
		hold     = fs.Duration("hold", 20*time.Second, "injection hold time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg hil.Config
	dur := *duration
	switch *name {
	case "follow":
		cfg = scenario.Follow(*seed, dur)
	case "cutin":
		cfg = scenario.CutIn(*seed)
	case "approach":
		cfg = scenario.Approach(*seed)
	case "drivecycle":
		cfg = scenario.DriveCycle(*seed)
		dur = scenario.DriveCycleDuration
	default:
		return fmt.Errorf("unknown scenario %q", *name)
	}
	bench, err := hil.New(cfg)
	if err != nil {
		return err
	}

	var onTick func(time.Duration, *hil.Bench) error
	if *injectKV != "" {
		name, value, err := parseInjection(*injectKV)
		if err != nil {
			return err
		}
		start, end := *at, *at+*hold
		onTick = func(now time.Duration, b *hil.Bench) error {
			switch now {
			case start:
				fmt.Fprintf(os.Stderr, "hilsim: injecting %s=%v at %v for %v\n", name, value, start, *hold)
				return b.SetInjection(name, value)
			case end:
				b.ClearInjection(name)
			}
			return nil
		}
	}
	if err := bench.Run(dur, onTick); err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".csv") {
		tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			return err
		}
	} else {
		if _, err := bench.Log().WriteTo(f); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "hilsim: %v of %s captured (%d frames) -> %s\n",
		dur, *name, bench.Log().Len(), *out)
	return f.Close()
}

func parseInjection(kv string) (string, float64, error) {
	name, valStr, ok := strings.Cut(kv, "=")
	if !ok {
		return "", 0, fmt.Errorf("bad -inject %q, want signal=value", kv)
	}
	if _, ok := sigdb.Vehicle().Signal(name); !ok {
		return "", 0, fmt.Errorf("unknown signal %q", name)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad injection value %q: %v", valStr, err)
	}
	return name, v, nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"cpsmon/internal/can"
	"cpsmon/internal/trace"
)

func TestRunWritesCANLog(t *testing.T) {
	out := filepath.Join(t.TempDir(), "capture.canlog")
	err := run([]string{"-scenario", "follow", "-duration", "5s", "-out", out})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	log, err := can.ReadLog(f)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	// 5 s at 10 ms: 500 ticks x 6 fast frames + 125 slow frames.
	if log.Len() < 3000 {
		t.Errorf("log has %d frames, want ≥3000", log.Len())
	}
}

func TestRunWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "capture.csv")
	if err := run([]string{"-scenario", "approach", "-duration", "2s", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if _, ok := tr.Series("Velocity"); !ok {
		t.Error("CSV trace missing Velocity")
	}
}

func TestRunWithInjection(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bad.canlog")
	err := run([]string{
		"-scenario", "follow", "-duration", "10s",
		"-inject", "Velocity=5", "-at", "3s", "-hold", "4s",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-scenario", "nosuch"},
		{"-inject", "Velocity"},          // missing =value
		{"-inject", "NoSignal=1"},        // unknown signal
		{"-inject", "Velocity=potato"},   // unparsable value
		{"-out", "/nonexistent-dir/x.y"}, // unwritable output
	}
	for _, args := range tests {
		if err := run(append(args, "-duration", "1s")); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseInjection(t *testing.T) {
	name, v, err := parseInjection("TargetRange=42.5")
	if err != nil || name != "TargetRange" || v != 42.5 {
		t.Errorf("parseInjection = %q %v %v", name, v, err)
	}
}

package main

import (
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/fleet"
	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// liveDaemon spins up a real fleet server with a flight recorder and
// SLO, streams one capture through it, and serves the admin surface —
// everything -top talks to, minus the process boundary.
func liveDaemon(t *testing.T) (target string) {
	t.Helper()
	reg := obs.NewRegistry()
	flt := flight.New(flight.Config{SampleEvery: 1})
	slo := flight.NewSLO(5*time.Second, 0.99, time.Minute)
	srv, err := fleet.NewServer(fleet.Config{
		DB: sigdb.Vehicle(),
		Resolve: func(string) (*speclang.RuleSet, error) {
			return rules.Strict()
		},
		Triage:  rules.DefaultTriage(),
		Metrics: reg,
		Flight:  flt,
		SLO:     slo,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	path := writeTestLog(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := can.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	c, err := fleet.DialOptions(srv.Addr().String(), fleet.Options{Vehicle: "veh-top", Spec: "strict", Flight: flt})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Replay(log, 0); err != nil {
		t.Fatalf("replay: %v", err)
	}

	admin := httptest.NewServer(obs.NewAdmin(obs.AdminConfig{
		Registry: reg,
		Health: func() obs.Health {
			h := obs.Health{SLOBurn: slo.Burn(), SLOTargetSeconds: slo.Target().Seconds()}
			if slo.Degraded() {
				h.State = "degraded"
			}
			return h
		},
		Flight: func() any { return flt.Snapshot() },
	}))
	t.Cleanup(admin.Close)
	return strings.TrimPrefix(admin.URL, "http://")
}

// TestRunTopRendersOneFrame is the -top CLI test: a single frame from
// a live daemon must carry the health state, fleet totals, SLO burn,
// the stage breakdown and the per-vehicle quantile table.
func TestRunTopRendersOneFrame(t *testing.T) {
	target := liveDaemon(t)
	var sb strings.Builder
	if err := runTop(target, 0, &sb); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"monitord " + target,
		"ok",              // healthz state
		"sessions",        // fleet block
		"frames",          //
		"burn 0.00",       // generous SLO target → zero burn
		"target 5s",       //
		"objective 99%",   //
		"flight",          // recorder stats line
		"STAGE",           // stage breakdown table
		"ingest",          //
		"decode",          //
		"eval",            //
		"emit",            //
		"deliver",         // client-side span, same recorder
		"VEHICLE",         // per-vehicle quantile table
		"veh-top",         //
		"E2E P50",         //
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-top frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("single-frame mode must not emit terminal control sequences:\n%q", out)
	}
	// One frame means no rate deltas yet — those need two polls.
	if strings.Contains(out, "/s)") {
		t.Errorf("first frame rendered a rate without a baseline:\n%s", out)
	}
}

// TestRunTopUnreachable pins the failure mode: a dead endpoint is an
// error, not an empty frame.
func TestRunTopUnreachable(t *testing.T) {
	var sb strings.Builder
	if err := runTop("127.0.0.1:1", 0, &sb); err == nil {
		t.Error("no error for a dead admin endpoint")
	}
	if sb.Len() != 0 {
		t.Errorf("failed -top still printed output:\n%s", sb.String())
	}
}

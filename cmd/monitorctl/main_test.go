package main

import (
	"context"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/fleet"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// writeTestLog records a short capture with a Rule #0 violation burst.
func writeTestLog(t *testing.T) string {
	t.Helper()
	db := sigdb.Vehicle()
	sched, err := can.NewTxSchedule(db, sigdb.FastPeriod, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < 100; tick++ {
		if tick >= 50 && tick < 70 {
			_ = bus.Set(sigdb.SigServiceACC, 1)
			_ = bus.Set(sigdb.SigACCEnabled, 1)
		} else {
			_ = bus.Set(sigdb.SigServiceACC, 0)
			_ = bus.Set(sigdb.SigACCEnabled, 0)
		}
		if err := bus.Step(time.Duration(tick) * sigdb.FastPeriod); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	path := filepath.Join(t.TempDir(), "test.canlog")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close()
	if _, err := bus.Log().WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return path
}

func TestRunChecksCANLog(t *testing.T) {
	path := writeTestLog(t)
	if err := run([]string{"-trace", path, "-v"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunOnlineMode(t *testing.T) {
	path := writeTestLog(t)
	if err := run([]string{"-trace", path, "-online"}); err != nil {
		t.Fatalf("run -online: %v", err)
	}
}

func TestRunStreamMode(t *testing.T) {
	path := writeTestLog(t)
	srv, err := fleet.NewServer(fleet.Config{
		DB: sigdb.Vehicle(),
		Resolve: func(name string) (*speclang.RuleSet, error) {
			if name == "relaxed" {
				return rules.Relaxed()
			}
			return rules.Strict()
		},
		Triage: rules.DefaultTriage(),
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	addr := srv.Addr().String()
	if err := run([]string{"-trace", path, "-stream", addr}); err != nil {
		t.Fatalf("run -stream: %v", err)
	}
	// A path-valued -rules selection falls back to the server default
	// rather than leaking local paths to the daemon.
	if err := run([]string{"-trace", path, "-stream", addr, "-rules", "/tmp/whatever.spec", "-speed", "100"}); err != nil {
		t.Fatalf("run -stream with path rules: %v", err)
	}
	if st := srv.Stats(); st.SessionsClosed != 2 || st.FramesIngested == 0 {
		t.Errorf("server stats after two replays: %+v", st)
	}
	// CSV traces cannot be streamed, and a dead address errors.
	if err := run([]string{"-trace", path + ".csv", "-stream", addr}); err == nil {
		t.Error("-stream accepted a CSV trace")
	}
	if err := run([]string{"-trace", path, "-stream", "127.0.0.1:1"}); err == nil {
		t.Error("-stream to a dead address succeeded")
	}
}

// TestRunStreamRetriesDroppedConnection streams through a relay that
// cuts the first connection mid-replay: the -retry/-max-retries flags
// must carry the session through a reconnect-and-resume to a complete
// verdict.
func TestRunStreamRetriesDroppedConnection(t *testing.T) {
	path := writeTestLog(t)
	srv, err := fleet.NewServer(fleet.Config{
		DB:      sigdb.Vehicle(),
		Resolve: func(string) (*speclang.RuleSet, error) { return rules.Strict() },
		Triage:  rules.DefaultTriage(),
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	upstream := srv.Addr().String()

	// The relay forwards the handshake in both directions, then drops
	// the first connection after 2 KiB of uplink; every later
	// connection passes through untouched.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("relay listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			cut := first.Swap(false)
			go func() {
				defer c.Close()
				up, err := net.Dial("tcp", upstream)
				if err != nil {
					return
				}
				defer up.Close()
				go func() { _, _ = io.Copy(c, up) }()
				if cut {
					_, _ = io.CopyN(up, c, 2048)
					return
				}
				_, _ = io.Copy(up, c)
			}()
		}
	}()

	err = run([]string{"-trace", path, "-stream", ln.Addr().String(),
		"-retry", "10ms", "-max-retries", "8"})
	if err != nil {
		t.Fatalf("run -stream through flaky relay: %v", err)
	}
	st := srv.Stats()
	if st.SessionsResumed == 0 {
		t.Errorf("first connection was never cut; stats %+v", st)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	log, err := can.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if st.FramesIngested != uint64(log.Len()) || st.FramesDropped != 0 {
		t.Errorf("ingested %d/%d frames, dropped %d; stats %+v",
			st.FramesIngested, log.Len(), st.FramesDropped, st)
	}
}

func TestRunRelaxedAndNaive(t *testing.T) {
	path := writeTestLog(t)
	if err := run([]string{"-trace", path, "-rules", "relaxed", "-delta", "naive"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCustomRuleFile(t *testing.T) {
	path := writeTestLog(t)
	spec := filepath.Join(t.TempDir(), "custom.spec")
	src := `spec Custom { assert ServiceACC -> !ACCEnabled }`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	if err := run([]string{"-trace", path, "-rules", spec}); err != nil {
		t.Fatalf("run with custom rules: %v", err)
	}
}

func TestRunSignalsInventory(t *testing.T) {
	if err := run([]string{"-signals"}); err != nil {
		t.Fatalf("run -signals: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestLog(t)
	tests := [][]string{
		{},                         // no trace
		{"-trace", "/nonexistent"}, // missing file
		{"-trace", path, "-delta", "sideways"},
		{"-trace", path, "-rules", "/nonexistent.spec"},
		{"-trace", path + ".csv", "-online"}, // online requires canlog
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunRejectsBadSpecFile(t *testing.T) {
	path := writeTestLog(t)
	spec := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(spec, []byte("spec Broken {"), 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	if err := run([]string{"-trace", path, "-rules", spec}); err == nil {
		t.Error("malformed spec file accepted")
	}
}

func TestRunWriteAndLoadCustomDB(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "vehicle.netdb")
	if err := run([]string{"-writedb", dbPath}); err != nil {
		t.Fatalf("run -writedb: %v", err)
	}
	// The exported template loads back and drives a full check.
	logPath := writeTestLog(t)
	if err := run([]string{"-db", dbPath, "-trace", logPath}); err != nil {
		t.Fatalf("run with custom db: %v", err)
	}
	if err := run([]string{"-db", dbPath, "-signals"}); err != nil {
		t.Fatalf("run -db -signals: %v", err)
	}
}

func TestRunCustomDBWithCustomRules(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "plant.netdb")
	dbSrc := `frame 0x42 Sensors period=10ms
    signal Pressure float bits=0:32 unit="bar"
    signal ValveOpen bool bits=32:1
`
	if err := os.WriteFile(dbPath, []byte(dbSrc), 0o644); err != nil {
		t.Fatalf("write db: %v", err)
	}
	specPath := filepath.Join(dir, "plant.spec")
	spec := `spec Relief { assert Pressure > 8.0 -> ValveOpen }`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatalf("write spec: %v", err)
	}
	// Record a short capture on the custom network.
	db, err := sigdb.ReadFormat(strings.NewReader(dbSrc))
	if err != nil {
		t.Fatalf("ReadFormat: %v", err)
	}
	sched, err := can.NewTxSchedule(db, 10*time.Millisecond, 0, nil)
	if err != nil {
		t.Fatalf("NewTxSchedule: %v", err)
	}
	bus := can.NewBus(db, sched)
	for tick := 0; tick < 50; tick++ {
		_ = bus.Set("Pressure", 9.5) // over-pressure, valve shut: violation
		_ = bus.Set("ValveOpen", 0)
		if err := bus.Step(time.Duration(tick) * 10 * time.Millisecond); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	logPath := filepath.Join(dir, "plant.canlog")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := bus.Log().WriteTo(f); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	_ = f.Close()
	// The bolt-on monitor checks a completely different CPS.
	if err := run([]string{"-db", dbPath, "-rules", specPath, "-trace", logPath, "-v"}); err != nil {
		t.Fatalf("run on custom network: %v", err)
	}
	if err := run([]string{"-db", dbPath, "-rules", specPath, "-trace", logPath, "-online"}); err != nil {
		t.Fatalf("online run on custom network: %v", err)
	}
}

func TestRunExplain(t *testing.T) {
	path := writeTestLog(t)
	if err := run([]string{"-trace", path, "-explain", "2", "-margin", "500ms"}); err != nil {
		t.Fatalf("run -explain: %v", err)
	}
}

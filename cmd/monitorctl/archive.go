package main

import (
	"fmt"
	"io"
	"text/tabwriter"

	"cpsmon/internal/archive"
	"cpsmon/internal/core"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/wire"
)

// runArchiveLs lists the segments of an archive directory: one line
// per segment with its state, record count, sequence range, capture
// time span and size, plus totals. The catalog open is read-only, so
// listing a directory a daemon is still writing into is safe.
func runArchiveLs(dir string, out io.Writer) error {
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(out, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SEGMENT\tSTATE\tRECORDS\tSEQ\tTIME\tBYTES")
	var records, bytes uint64
	for _, s := range cat.Segments() {
		state := "sealed"
		switch {
		case s.Damaged:
			state = "damaged"
		case !s.Sealed:
			state = "part"
		case s.Scanned:
			state = "sealed(scanned)"
		}
		if s.Torn {
			state += "+torn"
		}
		seq, span := "-", "-"
		if s.Records > 0 {
			seq = fmt.Sprintf("%d..%d", s.FirstSeq, s.LastSeq)
			span = fmt.Sprintf("%v..%v", s.TMin, s.TMax)
		}
		fmt.Fprintf(tw, "%08d\t%s\t%d\t%s\t%s\t%d\n",
			s.Number, state, s.Records, seq, span, s.Bytes)
		records += uint64(s.Records)
		bytes += uint64(s.Bytes)
	}
	fmt.Fprintf(tw, "total\t%d segments\t%d\t\t\t%d\n", len(cat.Segments()), records, bytes)
	return tw.Flush()
}

// runRecheck replays an archived time range through a freshly
// compiled spec set and prints per-session, per-rule agreement with
// the archived verdicts. A run that finds rule regressions returns an
// error, so spec edits can be gated on the fleet's history from CI.
func runRecheck(dir, spec string, db *sigdb.DB, mode speclang.DeltaMode, opt recheck.Options, out io.Writer) error {
	rs, err := loadRules(spec, db)
	if err != nil {
		return err
	}
	cat, err := archive.OpenCatalog(dir)
	if err != nil {
		return err
	}
	cfg := core.Config{Rules: rs, DeltaMode: mode, Triage: rules.DefaultTriage()}
	rep, err := recheck.Run(cat, db, cfg, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recheck: %s against %q: %d sessions, %d frames replayed\n",
		dir, spec, len(rep.Sessions), rep.FramesReplayed)
	for i := range rep.Sessions {
		sr := &rep.Sessions[i]
		status := "agrees"
		switch {
		case sr.Archived == nil:
			status = "no archived verdict"
		case sr.Divergent():
			status = "DIVERGED"
		}
		fmt.Fprintf(out, "session %d %-16s %8d frames  %s\n", sr.Session, sr.Vehicle, sr.Frames, status)
		for _, d := range sr.Diffs {
			kind := "fix"
			if d.Regression {
				kind = "REGRESSION"
			}
			fmt.Fprintf(out, "  %-28s %s: archived %s, rechecked %s\n",
				d.Rule, kind, ruleSummary(d.Archived), ruleSummary(d.Rechecked))
		}
	}
	fmt.Fprintf(out, "\nrecheck: %d sessions checked, %d divergent (%d rule regressions, %d fixes)\n",
		rep.Checked, rep.Divergent, rep.Regressions, rep.Fixes)
	if rep.Regressions > 0 {
		return fmt.Errorf("recheck found %d rule regressions", rep.Regressions)
	}
	return nil
}

func ruleSummary(rv wire.RuleVerdict) string {
	if !rv.Violated {
		return "satisfied"
	}
	return fmt.Sprintf("violated (%d: %d real, %d transient, %d negligible)",
		rv.Violations, rv.Real, rv.Transient, rv.Negligible)
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cpsmon/internal/archive"
	"cpsmon/internal/can"
	"cpsmon/internal/fleet"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// buildArchive streams the test capture through a real fleet server
// with the archive hook enabled, one session per vehicle, and returns
// the sealed archive directory.
func buildArchive(t *testing.T, vehicles ...string) string {
	t.Helper()
	dir := t.TempDir()
	aw, err := archive.OpenWriter(dir, archive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fleet.NewServer(fleet.Config{
		DB:       sigdb.Vehicle(),
		Resolve:  func(string) (*speclang.RuleSet, error) { return rules.Strict() },
		Triage:   rules.DefaultTriage(),
		Archiver: aw,
		// Full-speed replay outruns the default queue; recheck needs
		// lossless capture.
		ArchiveQueue: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	path := writeTestLog(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := can.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, vehicle := range vehicles {
		c, err := fleet.Dial(srv.Addr().String(), vehicle, "strict", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Replay(log, 0); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunArchiveLs(t *testing.T) {
	dir := buildArchive(t, "veh-ls")
	var sb strings.Builder
	if err := runArchiveLs(dir, &sb); err != nil {
		t.Fatalf("runArchiveLs: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"SEGMENT", "sealed", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "part") || strings.Contains(out, "torn") {
		t.Errorf("cleanly closed archive listed as torn or unsealed:\n%s", out)
	}
}

// TestRunRecheckSameSpecAgrees pins the CLI half of the e2e criterion:
// rechecking an archive against the spec that produced it reports zero
// divergence and exits clean.
func TestRunRecheckSameSpecAgrees(t *testing.T) {
	dir := buildArchive(t, "veh-a", "veh-b")
	db := sigdb.Vehicle()
	var sb strings.Builder
	if err := runRecheck(dir, "strict", db, speclang.DeltaUpdateAware, recheck.Options{}, &sb); err != nil {
		t.Fatalf("runRecheck: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "2 sessions checked, 0 divergent") {
		t.Errorf("same-spec recheck not clean:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") || strings.Contains(out, "REGRESSION") {
		t.Errorf("same-spec recheck reported divergence:\n%s", out)
	}

	// An explicit -vehicle narrows the replay to that vehicle.
	sb.Reset()
	if err := runRecheck(dir, "strict", db, speclang.DeltaUpdateAware, recheck.Options{Vehicle: "veh-a"}, &sb); err != nil {
		t.Fatalf("runRecheck -vehicle: %v\n%s", err, sb.String())
	}
	if out := sb.String(); strings.Contains(out, "veh-b") || !strings.Contains(out, "veh-a") {
		t.Errorf("vehicle filter did not narrow the recheck:\n%s", out)
	}
}

// TestRunRecheckWorkersFlag pins the -workers flag: it is threaded
// through to recheck.Options and the sharded run prints the same
// report as the sequential default, while a negative count is
// rejected with the familiar single-error exit path.
func TestRunRecheckWorkersFlag(t *testing.T) {
	dir := buildArchive(t, "veh-w1", "veh-w2", "veh-w3")
	db := sigdb.Vehicle()
	var seq strings.Builder
	if err := runRecheck(dir, "strict", db, speclang.DeltaUpdateAware, recheck.Options{Workers: 1}, &seq); err != nil {
		t.Fatalf("sequential runRecheck: %v\n%s", err, seq.String())
	}
	for _, workers := range []int{0, 2, 4} {
		var par strings.Builder
		if err := runRecheck(dir, "strict", db, speclang.DeltaUpdateAware, recheck.Options{Workers: workers}, &par); err != nil {
			t.Fatalf("workers=%d runRecheck: %v\n%s", workers, err, par.String())
		}
		if par.String() != seq.String() {
			t.Errorf("workers=%d output differs from sequential:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, seq.String(), workers, par.String())
		}
	}

	// The full CLI path accepts the flag and rejects a negative count.
	if err := run([]string{"-recheck", "strict", "-archive-dir", dir, "-workers", "2"}); err != nil {
		t.Errorf("run -workers 2: %v", err)
	}
	err := run([]string{"-recheck", "strict", "-archive-dir", dir, "-workers", "-3"})
	if err == nil || !strings.Contains(err.Error(), "worker count") {
		t.Errorf("run -workers -3: got %v, want worker-count error", err)
	}
}

// TestRunRecheckTightenedSpecRegresses rechecks against a tightened
// spec the archived traffic violates: the run must report the
// regression and return an error so CI gates fail.
func TestRunRecheckTightenedSpecRegresses(t *testing.T) {
	dir := buildArchive(t, "veh-tight")
	spec := filepath.Join(t.TempDir(), "tight.spec")
	// The test capture has an ACCEnabled burst; forbidding engagement
	// outright is strictly worse than every archived rule.
	if err := os.WriteFile(spec, []byte(`spec Tight { assert !ACCEnabled }`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := runRecheck(dir, spec, sigdb.Vehicle(), speclang.DeltaUpdateAware, recheck.Options{}, &sb)
	if err == nil {
		t.Fatalf("tightened recheck exited clean:\n%s", sb.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error %q does not mention regressions", err)
	}
	if out := sb.String(); !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "DIVERGED") {
		t.Errorf("regression not reported in output:\n%s", out)
	}
}

func TestRunArchiveFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-archive-ls"},        // no -archive-dir
		{"-recheck", "strict"}, // no -archive-dir
		{"-archive-ls", "-archive-dir", "/nonexistent"},
		{"-recheck", "/nonexistent.spec", "-archive-dir", "/nonexistent"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

package main

// The spec subcommand group drives a monitord's rollout surface over
// its admin endpoint:
//
//	monitorctl spec push -f tightened.spec -admin 127.0.0.1:9321
//	monitorctl spec status -admin 127.0.0.1:9321
//	monitorctl spec promote -admin 127.0.0.1:9321
//	monitorctl spec rollback -reason "too chatty" -admin 127.0.0.1:9321

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"cpsmon/internal/specreg"
)

// specStatus mirrors monitord's /spec/status JSON body. It is decoded
// into local types rather than shared ones so monitorctl keeps working
// against daemons a revision ahead or behind.
type specStatus struct {
	Status struct {
		Phase       string `json:"phase"`
		Hash        string `json:"hash"`
		Name        string `json:"name"`
		ActiveHash  string `json:"active_hash"`
		ActiveEpoch uint64 `json:"active_epoch"`
		// Gate and Shadow are pointers: the daemon omits them when no
		// gate ran / no round is shadowing, and nil keeps that
		// distinguishable from a gate over zero sessions.
		Gate   *specGateResult  `json:"gate"`
		Err    string           `json:"error"`
		Reason string           `json:"rollback_reason"`
		Shadow *specShadowStats `json:"shadow"`
	} `json:"status"`
	Specs []struct {
		Hash      string `json:"hash"`
		Name      string `json:"name"`
		Active    bool   `json:"active"`
		Candidate bool   `json:"candidate"`
	} `json:"specs"`
}

type specGateResult struct {
	Sessions    int    `json:"Sessions"`
	Regressions int    `json:"Regressions"`
	Fixes       int    `json:"Fixes"`
	Detail      string `json:"Detail"`
}

type specShadowStats struct {
	Sessions         int64  `json:"Sessions"`
	Batches          uint64 `json:"Batches"`
	DivergentBatches uint64 `json:"DivergentBatches"`
	Divergences      uint64 `json:"Divergences"`
	Errors           uint64 `json:"Errors"`
}

// runSpec dispatches `monitorctl spec <verb>`.
func runSpec(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: monitorctl spec <push|status|promote|rollback> [-admin host:port] ...")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("monitorctl spec "+verb, flag.ContinueOnError)
	admin := fs.String("admin", "127.0.0.1:9321", "monitord admin endpoint (host:port or URL)")
	file := fs.String("f", "", "spec file to push")
	name := fs.String("name", "", "name recorded for the pushed spec (default: the file's base name)")
	reason := fs.String("reason", "", "reason recorded with the rollback")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	base := adminBase(*admin)

	switch verb {
	case "push":
		if *file == "" {
			return fmt.Errorf("spec push requires -f <file>")
		}
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		n := *name
		if n == "" {
			n = filepath.Base(*file)
		}
		var rep struct {
			Hash string `json:"hash"`
		}
		if err := specPost(base+"/spec/push?name="+url.QueryEscape(n), src, &rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "pushed %s as candidate %.12s; shadow evaluation running\n", *file, rep.Hash)
		return nil
	case "status":
		var st specStatus
		if err := specGet(base+"/spec/status", &st); err != nil {
			return err
		}
		printSpecStatus(out, &st)
		return nil
	case "promote":
		var st specStatus
		if err := specPost(base+"/spec/promote", nil, &st); err != nil {
			return err
		}
		fmt.Fprintf(out, "promoted %.12s at epoch %d\n", st.Status.ActiveHash, st.Status.ActiveEpoch)
		return nil
	case "rollback":
		u := base + "/spec/rollback"
		if *reason != "" {
			u += "?reason=" + url.QueryEscape(*reason)
		}
		var st specStatus
		if err := specPost(u, nil, &st); err != nil {
			return err
		}
		fmt.Fprintf(out, "rolled back %.12s: %s\n", st.Status.Hash, st.Status.Reason)
		return nil
	default:
		return fmt.Errorf("unknown spec subcommand %q (want push, status, promote or rollback)", verb)
	}
}

// resolveRegistrySpec lets -recheck name a spec out of a monitord
// registry by content hash (or a unique 12+ digit prefix): the
// built-in names and real file paths pass through untouched, anything
// else is looked up in the registry and materialized into a temporary
// .spec file for the recheck to compile. Best run against a stopped
// daemon's registry or a copy — the open repairs torn tails in place.
func resolveRegistrySpec(dir, spec string) (string, func(), error) {
	nop := func() {}
	if spec == "strict" || spec == "relaxed" {
		return spec, nop, nil
	}
	if _, err := os.Stat(spec); err == nil {
		return spec, nop, nil
	}
	reg, err := specreg.OpenRegistry(dir)
	if err != nil {
		return "", nop, err
	}
	defer reg.Close()
	s, ok := reg.Get(spec)
	if !ok {
		return "", nop, fmt.Errorf("spec %q: not a file and not a hash in registry %s", spec, dir)
	}
	f, err := os.CreateTemp("", "recheck-"+s.Hash[:12]+"-*.spec")
	if err != nil {
		return "", nop, err
	}
	if _, err := f.WriteString(s.Source); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", nop, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", nop, err
	}
	return f.Name(), func() { os.Remove(f.Name()) }, nil
}

// adminBase resolves an admin target into a URL prefix with no
// trailing slash: a bare host:port becomes http://<target>.
func adminBase(target string) string {
	u := target
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

func specGet(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("admin endpoint unreachable: %w (is monitord running with -admin and -spec-dir?)", err)
	}
	return specDecode(resp, v)
}

func specPost(url string, body []byte, v any) error {
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("admin endpoint unreachable: %w (is monitord running with -admin and -spec-dir?)", err)
	}
	return specDecode(resp, v)
}

// specDecode reads a /spec/* reply, surfacing the server's JSON error
// body on non-200 statuses.
func specDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s", e.Error)
		}
		return fmt.Errorf("spec request: status %s", resp.Status)
	}
	return json.Unmarshal(body, v)
}

// printSpecStatus renders the rollout snapshot and the stored specs.
func printSpecStatus(out io.Writer, st *specStatus) {
	s := &st.Status
	fmt.Fprintf(out, "phase:  %s\n", s.Phase)
	fmt.Fprintf(out, "active: %.12s epoch %d\n", s.ActiveHash, s.ActiveEpoch)
	if s.Hash != "" && s.Hash != s.ActiveHash {
		fmt.Fprintf(out, "candidate: %.12s (%s)\n", s.Hash, s.Name)
	}
	if s.Gate != nil {
		fmt.Fprintf(out, "gate:   %s\n", s.Gate.Detail)
	}
	if s.Phase == "shadowing" && s.Shadow != nil {
		sh := s.Shadow
		frac := 0.0
		if sh.Batches > 0 {
			frac = float64(sh.DivergentBatches) / float64(sh.Batches)
		}
		fmt.Fprintf(out, "shadow: %d sessions, %d batches compared, %d divergent (%.2f%%), %d rule divergences, %d errors\n",
			sh.Sessions, sh.Batches, sh.DivergentBatches, 100*frac, sh.Divergences, sh.Errors)
	}
	if s.Err != "" {
		fmt.Fprintf(out, "error:  %s\n", s.Err)
	}
	if s.Reason != "" {
		fmt.Fprintf(out, "rollback reason: %s\n", s.Reason)
	}
	if len(st.Specs) > 0 {
		fmt.Fprintln(out, "\nHASH          NAME")
		for _, sp := range st.Specs {
			mark := ""
			if sp.Active {
				mark = "  [active]"
			}
			if sp.Candidate {
				mark += "  [candidate]"
			}
			fmt.Fprintf(out, "%.12s  %s%s\n", sp.Hash, sp.Name, mark)
		}
	}
}

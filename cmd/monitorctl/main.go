// Command monitorctl is the bolt-on test oracle: it checks recorded
// traces (CAN frame logs or CSV signal traces) against the safety rule
// sets and reports per-rule verdicts, violations and triage classes.
//
// Usage:
//
//	monitorctl -trace capture.canlog            # strict rules
//	monitorctl -trace drive.csv -rules relaxed
//	monitorctl -trace capture.canlog -rules specs/strict.spec -delta naive
//	monitorctl -trace capture.canlog -online     # streaming replay
//	monitorctl -trace capture.canlog -stream localhost:9320 -speed 1
//	                                             # replay to a monitord
//	monitorctl -trace capture.canlog -explain 2  # context strips per violation
//	monitorctl -signals                          # print the Figure 1 inventory
//	monitorctl -writedb my.netdb                 # export the network DB template
//	monitorctl -metrics 127.0.0.1:9321           # scrape a monitord admin endpoint
//	monitorctl -top 127.0.0.1:9321               # live fleet latency view
//	monitorctl -top 127.0.0.1:9321 -interval 0   # one frame, then exit
//	monitorctl -archive-dir /var/lib/cpsmon -archive-ls
//	                                             # list a monitord archive's segments
//	monitorctl -archive-dir /var/lib/cpsmon -recheck specs/tightened.spec -from 1m -to 5m
//	                                             # re-verify archived traffic against a spec
//	monitorctl -archive-dir /var/lib/cpsmon -spec-dir /var/lib/cpsmon/specs -recheck 3f1a9c0d2e4b
//	                                             # ... against a registry spec by hash
//	monitorctl spec push -f tightened.spec -admin 127.0.0.1:9321
//	monitorctl spec status -admin 127.0.0.1:9321 # rollout phase + shadow counters
//	monitorctl spec promote -admin 127.0.0.1:9321
//	monitorctl spec rollback -reason "too chatty" -admin 127.0.0.1:9321
//	monitorctl -version                          # print build version and exit
//	monitorctl -db plant.netdb -rules plant.spec -trace plant.canlog
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/fleet"
	"cpsmon/internal/recheck"
	"cpsmon/internal/rules"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
	"cpsmon/internal/wire"
)

func main() {
	// `monitorctl spec <verb>` is a subcommand group with its own flags;
	// everything else goes through the single flag set in run.
	var err error
	if len(os.Args) > 1 && os.Args[1] == "spec" {
		err = runSpec(os.Args[2:], os.Stdout)
	} else {
		err = run(os.Args[1:])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "monitorctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("monitorctl", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "trace to check: a .canlog frame capture or a .csv signal trace")
		ruleSpec  = fs.String("rules", "strict", "rule set: strict, relaxed, or a path to a .spec file")
		deltaMode = fs.String("delta", "aware", "multi-rate difference semantics: aware or naive")
		dbPath    = fs.String("db", "", "custom network database file (see 'monitorctl -writedb' for the format); default is the paper's vehicle network")
		writeDB   = fs.String("writedb", "", "write the built-in vehicle database to this file as a template and exit")
		signals   = fs.Bool("signals", false, "print the network's signal inventory (paper Figure 1 for the built-in vehicle) and exit")
		metrics   = fs.String("metrics", "", "scrape a monitord admin endpoint (host:port or URL), pretty-print its metrics, and exit")
		top       = fs.String("top", "", "render a live fleet latency view (rates, per-vehicle e2e quantiles, SLO burn, stage breakdown) from a monitord admin endpoint")
		interval  = fs.Duration("interval", 2*time.Second, "refresh interval for -top (0 = render one frame and exit)")
		online    = fs.Bool("online", false, "replay the capture through the streaming monitor, printing events as they become decidable (requires a .canlog trace)")
		stream    = fs.String("stream", "", "replay the capture to a monitord fleet server at this address, printing its incremental verdicts (requires a .canlog trace)")
		speed     = fs.Float64("speed", 0, "replay speed for -stream: 1 is real time, 2 double speed, 0 as fast as the server accepts")
		vehicle   = fs.String("vehicle", "monitorctl", "vehicle identity announced to the fleet server with -stream")
		retry     = fs.Duration("retry", 50*time.Millisecond, "initial reconnect backoff for -stream, doubled with jitter per failed attempt")
		maxRetry  = fs.Int("max-retries", 5, "reconnect attempts per outage for -stream before the replay fails; 0 disables reconnection")
		explain   = fs.Int("explain", 0, "render signal context strips for up to N violations per rule")
		margin    = fs.Duration("margin", 2*time.Second, "context margin around each explained violation")
		verbose   = fs.Bool("v", false, "list every violation")

		version     = fs.Bool("version", false, "print the build version and exit")
		archiveDir  = fs.String("archive-dir", "", "monitord archive directory for -archive-ls and -recheck")
		specDir     = fs.String("spec-dir", "", "monitord spec registry directory: lets -recheck name a stored spec by content hash (12+ hex digits) instead of a file")
		archiveLs   = fs.Bool("archive-ls", false, "list the segments of -archive-dir and exit")
		recheckSpec = fs.String("recheck", "", "re-verify archived traffic in -archive-dir against this rule set (strict, relaxed, or a .spec path) and report per-rule divergence")
		fromT       = fs.Duration("from", 0, "capture-time lower bound for -recheck (0 = start of archive)")
		toT         = fs.Duration("to", 0, "capture-time upper bound for -recheck (0 = end of archive)")
		workers     = fs.Int("workers", 0, "worker count for -recheck session sharding (0 = GOMAXPROCS, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *version {
		fmt.Println(versionString("monitorctl"))
		return nil
	}
	if *metrics != "" {
		return runMetrics(*metrics, os.Stdout)
	}
	if *top != "" {
		return runTop(*top, *interval, os.Stdout)
	}
	if *writeDB != "" {
		f, err := os.Create(*writeDB)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sigdb.WriteFormat(f, sigdb.Vehicle()); err != nil {
			return err
		}
		return f.Close()
	}
	db := sigdb.Vehicle()
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		loaded, err := sigdb.ReadFormat(f)
		f.Close()
		if err != nil {
			return err
		}
		db = loaded
	}
	if *signals {
		printSignals(db)
		return nil
	}
	mode := speclang.DeltaUpdateAware
	switch *deltaMode {
	case "aware":
	case "naive":
		mode = speclang.DeltaNaive
	default:
		return fmt.Errorf("unknown -delta %q (want aware or naive)", *deltaMode)
	}
	if *archiveLs {
		if *archiveDir == "" {
			return fmt.Errorf("-archive-ls requires -archive-dir")
		}
		return runArchiveLs(*archiveDir, os.Stdout)
	}
	if *recheckSpec != "" {
		if *archiveDir == "" {
			return fmt.Errorf("-recheck requires -archive-dir")
		}
		opt := recheck.Options{From: *fromT, To: *toT, Workers: *workers}
		// -vehicle doubles as the -stream identity, so its default
		// must not silently filter the recheck; only an explicit flag
		// narrows the replay.
		if set["vehicle"] {
			opt.Vehicle = *vehicle
		}
		spec := *recheckSpec
		if *specDir != "" {
			resolved, cleanup, err := resolveRegistrySpec(*specDir, spec)
			if err != nil {
				return err
			}
			defer cleanup()
			spec = resolved
		}
		return runRecheck(*archiveDir, spec, db, mode, opt, os.Stdout)
	}
	if *tracePath == "" {
		fs.Usage()
		return fmt.Errorf("-trace is required")
	}
	if *stream != "" {
		streamSpec := *ruleSpec
		if !set["rules"] {
			// No explicit -rules: ride the server's default spec instead
			// of pinning its name, so the session is eligible for spec
			// rollouts (named-spec sessions are rollout-exempt by design
			// — see DESIGN.md §16).
			streamSpec = ""
		}
		return runStream(*stream, *tracePath, streamSpec, *vehicle, *speed, *retry, *maxRetry)
	}

	rs, err := loadRules(*ruleSpec, db)
	if err != nil {
		return err
	}
	mon, err := core.New(core.Config{Rules: rs, DeltaMode: mode, Triage: rules.DefaultTriage()})
	if err != nil {
		return err
	}
	if *online {
		return runOnline(mon, *tracePath, db)
	}

	tr, err := loadTrace(*tracePath, db)
	if err != nil {
		return err
	}
	rep, err := mon.CheckTrace(tr)
	if err != nil {
		return err
	}

	fmt.Printf("trace: %s (%d steps at %v)\n\n", *tracePath, rep.Steps, rep.Period)
	for _, rr := range rep.Rules {
		fmt.Printf("%-28s %s", rr.Name(), rr.Verdict)
		if rr.Verdict == core.Violated {
			fmt.Printf("  (%d violations: %d real, %d transient, %d negligible)",
				len(rr.Result.Violations),
				rr.Count(core.ClassReal), rr.Count(core.ClassTransient), rr.Count(core.ClassNegligible))
		}
		fmt.Println()
		if *verbose {
			for i, v := range rr.Result.Violations {
				fmt.Printf("    [%s] at %v for %v peak %.4g: %s\n",
					rr.Classes[i], v.Start, v.Duration(), v.Peak, v.Msg)
			}
		}
	}
	if *explain > 0 {
		for _, rr := range rep.Rules {
			for i := range rr.Result.Violations {
				if i >= *explain {
					break
				}
				ex, err := mon.Explain(tr, rep, rr.Name(), i, *margin)
				if err != nil {
					return err
				}
				fmt.Println()
				if err := ex.Render(os.Stdout); err != nil {
					return err
				}
			}
		}
	}
	if rep.AnyReal() {
		fmt.Println("\nverdict: VIOLATED (real violations present)")
	} else if rep.AnyViolated() {
		fmt.Println("\nverdict: violated, but every violation triaged as overly-strict")
	} else {
		fmt.Println("\nverdict: satisfied")
	}
	return nil
}

// runStream replays a frame capture to a monitord fleet server over
// the wire protocol, printing the server's incremental events as they
// arrive and its end-of-stream verdict. The spec selection is passed
// to the server verbatim ("strict", "relaxed", or empty for the
// server's default rule set). A connection lost mid-replay is retried
// up to maxRetry times per outage, starting at the retry backoff, and
// the session resumes from the server's last acknowledged batch.
func runStream(addr, path, spec, vehicle string, speed float64, retry time.Duration, maxRetry int) error {
	if strings.HasSuffix(path, ".csv") {
		return fmt.Errorf("-stream replays CAN frame captures, not CSV traces")
	}
	if spec != "strict" && spec != "relaxed" {
		// A path-based -rules selection is meaningless remotely: the
		// server compiles its own specs. Fall back to its default.
		spec = ""
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	log, err := can.ReadLog(f)
	f.Close()
	if err != nil {
		return err
	}
	if maxRetry <= 0 {
		maxRetry = -1 // a zero Options.MaxRetries would select the default
	}
	c, err := fleet.DialOptions(addr, fleet.Options{
		Vehicle:    vehicle,
		Spec:       spec,
		Backoff:    retry,
		MaxRetries: maxRetry,
		OnEvent: func(e wire.Event) {
			switch e.Kind {
			case wire.EventBegin:
				fmt.Printf("[%8s] %-8s violation BEGINS at %v\n", e.Time, e.Rule, e.Time)
			case wire.EventEnd:
				fmt.Printf("[%8s] %-8s violation ENDS: %v..%v (%v) peak %.4g class %s: %s\n",
					e.Time, e.Rule, e.Start, e.End, e.End-e.Start, e.Peak, core.Class(e.Class), e.Msg)
			case wire.EventGap:
				fmt.Printf("[%8s] stream gap: %s\n", e.Time, e.Msg)
			}
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("streaming %s (%d frames, %v) to %s as %q (session %d)\n",
		path, log.Len(), log.Duration(), addr, vehicle, c.Session())
	v, err := c.Replay(log, speed)
	if err != nil {
		return err
	}
	if seen := v.FramesIngested + v.FramesDropped + v.FramesRejected; seen < uint64(log.Len()) {
		fmt.Printf("\nnote: server ended the session early (shutdown drain); verdict covers the first %d of %d frames\n",
			seen, log.Len())
	}
	fmt.Printf("\nverdict from %s (%d frames ingested, %d dropped, %d rejected):\n",
		addr, v.FramesIngested, v.FramesDropped, v.FramesRejected)
	anyViolated, anyReal := false, false
	for _, rv := range v.Rules {
		verdict := core.Satisfied
		if rv.Violated {
			verdict = core.Violated
			anyViolated = true
			anyReal = anyReal || rv.Real > 0
		}
		fmt.Printf("%-28s %s", rv.Rule, verdict)
		if rv.Violated {
			fmt.Printf("  (%d violations: %d real, %d transient, %d negligible)",
				rv.Violations, rv.Real, rv.Transient, rv.Negligible)
		}
		fmt.Println()
	}
	switch {
	case anyReal:
		fmt.Println("\nverdict: VIOLATED (real violations present)")
	case anyViolated:
		fmt.Println("\nverdict: violated, but every violation triaged as overly-strict")
	default:
		fmt.Println("\nverdict: satisfied")
	}
	return nil
}

// runOnline replays a frame capture through the streaming monitor,
// printing each event with the frame time at which it became decidable.
func runOnline(mon *core.Monitor, path string, db *sigdb.DB) error {
	if strings.HasSuffix(path, ".csv") {
		return fmt.Errorf("-online replays CAN frame captures, not CSV traces")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := can.ReadLog(f)
	if err != nil {
		return err
	}
	om, err := mon.Online(db)
	if err != nil {
		return err
	}
	report := func(at string, evs []core.OnlineEvent) {
		for _, e := range evs {
			switch e.Kind {
			case speclang.ViolationBegin:
				fmt.Printf("[%8s] %-8s violation BEGINS at %v\n", at, e.Rule, e.Time)
			case speclang.ViolationEnd:
				v := e.Violation
				fmt.Printf("[%8s] %-8s violation ENDS: %v..%v (%v) peak %.4g class %s: %s\n",
					at, e.Rule, v.Start, v.End, v.Duration(), v.Peak, e.Class, v.Msg)
			}
		}
	}
	for _, fr := range log.Frames() {
		evs, err := om.PushFrame(fr)
		if err != nil {
			return err
		}
		report(fr.Time.String(), evs)
	}
	evs, err := om.Close()
	if err != nil {
		return err
	}
	report("close", evs)
	return nil
}

func loadRules(spec string, db *sigdb.DB) (*speclang.RuleSet, error) {
	switch spec {
	case "strict":
		return rules.Strict()
	case "relaxed":
		return rules.Relaxed()
	}
	src, err := os.ReadFile(spec)
	if err != nil {
		return nil, err
	}
	f, err := speclang.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return speclang.Compile(f, db.SignalNames())
}

func loadTrace(path string, db *sigdb.DB) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return trace.ReadCSV(f)
	}
	log, err := can.ReadLog(f)
	if err != nil {
		return nil, err
	}
	return trace.FromCANLog(log, db)
}

func printSignals(db *sigdb.DB) {
	// Classify the paper's Figure 1 signals as feature inputs/outputs
	// when present; a custom database lists its signals unclassified.
	role := make(map[string]string)
	for _, name := range sigdb.FSRACCInputs() {
		role[name] = "Input"
	}
	for _, name := range sigdb.FSRACCOutputs() {
		role[name] = "Output"
	}
	fmt.Println("NETWORK SIGNAL INVENTORY")
	fmt.Printf("\n%-6s %-16s %-6s %-6s %s\n", "I/O", "Name", "Type", "Unit", "Description")
	for _, name := range db.SignalNames() {
		s, ok := db.Signal(name)
		if !ok {
			continue
		}
		fmt.Printf("%-6s %-16s %-6s %-6s %s\n", role[s.Name], s.Name, s.Kind, s.Unit, s.Comment)
	}
	fmt.Println("\nBroadcast frames:")
	for _, f := range db.Frames() {
		var names []string
		for _, s := range f.Signals {
			names = append(names, s.Name)
		}
		fmt.Printf("  0x%03X %-12s every %-5v %s\n", f.ID, f.Name, f.Period, strings.Join(names, ", "))
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"cpsmon/internal/flight"
	"cpsmon/internal/obs"
)

// topState carries the previous poll's counter totals so the next
// frame can print rates from deltas.
type topState struct {
	at     time.Time
	totals map[string]float64
}

// rate counters shown on the fleet line, scraped total → per-second
// delta between polls.
var topRates = []struct{ metric, label string }{
	{"cpsmon_fleet_frames_ingested_total", "frames"},
	{"cpsmon_fleet_events_emitted_total", "events"},
	{"cpsmon_fleet_violations_emitted_total", "violations"},
}

// runTop renders a live, auto-refreshing terminal view of a monitord
// admin endpoint: fleet throughput rates, the detection-latency SLO
// burn, the flight recorder's per-stage latency breakdown and a
// per-vehicle end-to-end quantile table. interval 0 renders exactly
// one frame and exits, for scripting and tests; otherwise the screen
// is cleared and redrawn every interval until interrupted.
func runTop(target string, interval time.Duration, out io.Writer) error {
	base := strings.TrimSuffix(metricsURL(target), "/metrics")
	var prev *topState
	for {
		frame, cur, err := topFrame(target, base, prev)
		if err != nil {
			return err
		}
		if interval <= 0 {
			_, err = io.WriteString(out, frame)
			return err
		}
		// Home the cursor and clear below instead of a full wipe, so a
		// refresh never flickers.
		if _, err := io.WriteString(out, "\x1b[H\x1b[2J"+frame); err != nil {
			return err
		}
		prev = cur
		time.Sleep(interval)
	}
}

// topFrame scrapes the endpoint once and renders one frame.
func topFrame(target, base string, prev *topState) (string, *topState, error) {
	fams, err := scrapeFamilies(base + "/metrics")
	if err != nil {
		return "", nil, err
	}
	now := time.Now()
	totals := make(map[string]float64)
	var e2e *promFamily
	for _, f := range fams {
		if f.name == "cpsmon_fleet_e2e_latency_seconds" {
			e2e = f
		}
		for _, s := range f.samples {
			totals[s.series] += s.value
		}
	}

	var sb strings.Builder
	state, burn := topHealth(base)
	fmt.Fprintf(&sb, "monitord %s — %s", target, state)
	if prev != nil {
		fmt.Fprintf(&sb, " — refreshed %s", now.Format("15:04:05"))
	}
	fmt.Fprintln(&sb)
	fmt.Fprintln(&sb)

	tw := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sessions\tactive %.0f\topened %.0f\tresumed %.0f\n",
		totals["cpsmon_fleet_sessions_active"],
		totals["cpsmon_fleet_sessions_opened_total"],
		totals["cpsmon_fleet_sessions_resumed_total"])
	fmt.Fprint(tw, "fleet")
	for _, r := range topRates {
		fmt.Fprintf(tw, "\t%s %.0f%s", r.label, totals[r.metric], topRate(prev, now, totals, r.metric))
	}
	fmt.Fprintln(tw)
	if _, ok := totals["cpsmon_fleet_slo_burn_rate"]; ok {
		fmt.Fprintf(tw, "slo\tburn %.2f\ttarget %s\tobjective %.4g%%\n",
			burn,
			fmtLatency(totals["cpsmon_fleet_slo_target_seconds"]),
			100*totals["cpsmon_fleet_slo_objective"])
	}
	tw.Flush()

	if snap, ok := topFlight(base); ok {
		fmt.Fprintf(&sb, "flight    recorded %d  dropped %d  sampled %d (every %d)\n",
			snap.Recorded, snap.Dropped, snap.Sampled, snap.SampleEvery)
		sb.WriteString(renderStages(snap))
	}
	sb.WriteString(renderVehicles(e2e))
	return sb.String(), &topState{at: now, totals: totals}, nil
}

// topRate renders " (+N/s)" for one counter when a previous poll gives
// a baseline, "" otherwise.
func topRate(prev *topState, now time.Time, totals map[string]float64, metric string) string {
	if prev == nil {
		return ""
	}
	dt := now.Sub(prev.at).Seconds()
	if dt <= 0 {
		return ""
	}
	return fmt.Sprintf(" (+%.0f/s)", (totals[metric]-prev.totals[metric])/dt)
}

// topHealth reads /healthz: the structured state string and SLO burn,
// degrading gracefully to the HTTP status alone on an older daemon.
func topHealth(base string) (state string, burn float64) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return "unreachable", 0
	}
	defer resp.Body.Close()
	var h obs.Health
	if json.NewDecoder(resp.Body).Decode(&h) == nil && h.State != "" {
		return h.State, h.SLOBurn
	}
	if resp.StatusCode == http.StatusOK {
		return "ok", 0
	}
	return "draining", 0
}

// topFlight reads /debug/flight; absent (404, or an old daemon) just
// drops the stage section.
func topFlight(base string) (flight.Snapshot, bool) {
	resp, err := http.Get(base + "/debug/flight")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return flight.Snapshot{}, false
	}
	defer resp.Body.Close()
	var snap flight.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return flight.Snapshot{}, false
	}
	return snap, true
}

// renderStages aggregates the snapshot's spans into a per-stage table
// (pipeline order), with per-rule eval spans broken out beneath eval,
// slowest rule first.
func renderStages(snap flight.Snapshot) string {
	type agg struct {
		n        int
		sum, max int64
	}
	stages := make(map[string]*agg)
	rules := make(map[string]*agg)
	fold := func(m map[string]*agg, key string, dur int64) {
		a, ok := m[key]
		if !ok {
			a = &agg{}
			m[key] = a
		}
		a.n++
		a.sum += dur
		if dur > a.max {
			a.max = dur
		}
	}
	for _, sp := range snap.Spans {
		if sp.Rule != "" {
			fold(rules, sp.Rule, sp.Dur)
			continue
		}
		fold(stages, sp.Stage, sp.Dur)
	}
	if len(stages) == 0 {
		return ""
	}
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nSTAGE\tSPANS\tAVG\tMAX")
	row := func(name string, a *agg) {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", name, a.n, fmtNanos(a.sum/int64(a.n)), fmtNanos(a.max))
	}
	for st := flight.StageIngest; int(st) < flight.NumStages; st++ {
		name := st.String()
		a, ok := stages[name]
		if !ok {
			continue
		}
		row(name, a)
		if st == flight.StageEval && len(rules) > 0 {
			names := make([]string, 0, len(rules))
			for r := range rules {
				names = append(names, r)
			}
			sort.Slice(names, func(i, j int) bool {
				ri, rj := rules[names[i]], rules[names[j]]
				if ri.sum != rj.sum {
					return ri.sum > rj.sum
				}
				return names[i] < names[j]
			})
			for _, r := range names {
				row("  "+r, rules[r])
			}
		}
	}
	tw.Flush()
	return sb.String()
}

// renderVehicles renders the per-vehicle end-to-end latency quantile
// table from the scraped histogram family.
func renderVehicles(e2e *promFamily) string {
	if e2e == nil {
		return ""
	}
	series := histogramSeries(e2e)
	if len(series) == 0 {
		return ""
	}
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nVEHICLE\tBATCHES\tE2E P50\tP95\tP99")
	for _, h := range series {
		name := labelValue(h.labels, "vehicle")
		if name == "" {
			name = h.labels
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%s\t%s\n", name, h.count,
			fmtLatency(h.quantile(0.50)), fmtLatency(h.quantile(0.95)), fmtLatency(h.quantile(0.99)))
	}
	tw.Flush()
	return sb.String()
}

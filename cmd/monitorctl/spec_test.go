package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"cpsmon/internal/rules"
	"cpsmon/internal/specreg"
)

// fakeSpecServer emulates monitord's /spec/ surface closely enough to
// exercise the subcommand group: it records the last push and serves a
// canned status.
func fakeSpecServer(t *testing.T) (*httptest.Server, *struct {
	Name   string
	Source string
	Reason string
}) {
	t.Helper()
	got := &struct {
		Name   string
		Source string
		Reason string
	}{}
	mux := http.NewServeMux()
	status := map[string]any{
		"status": map[string]any{
			"phase":        "shadowing",
			"hash":         "c0ffee0123456789",
			"name":         "tightened.spec",
			"active_hash":  "ab1e0123456789ab",
			"active_epoch": 3,
			"gate":         map[string]any{"Sessions": 2, "Fixes": 1, "Detail": "2 sessions rechecked"},
			"shadow":       map[string]any{"Sessions": 1, "Batches": 40, "DivergentBatches": 1, "Divergences": 2},
		},
		"specs": []map[string]any{
			{"hash": "ab1e0123456789ab", "name": "strict", "active": true},
			{"hash": "c0ffee0123456789", "name": "tightened.spec", "candidate": true},
		},
	}
	mux.HandleFunc("/spec/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("/spec/push", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got.Name = r.URL.Query().Get("name")
		got.Source = string(b)
		if strings.Contains(got.Source, "broken") {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]string{"error": "does not compile"})
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"hash": "c0ffee0123456789"})
	})
	mux.HandleFunc("/spec/promote", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("/spec/rollback", func(w http.ResponseWriter, r *http.Request) {
		got.Reason = r.URL.Query().Get("reason")
		json.NewEncoder(w).Encode(status)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, got
}

func TestSpecSubcommands(t *testing.T) {
	srv, got := fakeSpecServer(t)

	specFile := t.TempDir() + "/tightened.spec"
	if err := os.WriteFile(specFile, []byte("rule text"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runSpec([]string{"push", "-f", specFile, "-admin", srv.URL}, &out); err != nil {
		t.Fatalf("spec push: %v", err)
	}
	if got.Name != "tightened.spec" || got.Source != "rule text" {
		t.Fatalf("push sent name %q source %q", got.Name, got.Source)
	}
	if !strings.Contains(out.String(), "c0ffee012345") {
		t.Fatalf("push output = %q", out.String())
	}

	out.Reset()
	if err := runSpec([]string{"status", "-admin", srv.URL}, &out); err != nil {
		t.Fatalf("spec status: %v", err)
	}
	for _, want := range []string{"shadowing", "ab1e0123456789ab"[:12], "epoch 3", "40 batches", "tightened.spec", "[active]", "[candidate]"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("status output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := runSpec([]string{"promote", "-admin", srv.URL}, &out); err != nil {
		t.Fatalf("spec promote: %v", err)
	}
	if !strings.Contains(out.String(), "epoch 3") {
		t.Fatalf("promote output = %q", out.String())
	}

	out.Reset()
	if err := runSpec([]string{"rollback", "-reason", "too chatty", "-admin", srv.URL}, &out); err != nil {
		t.Fatalf("spec rollback: %v", err)
	}
	if got.Reason != "too chatty" {
		t.Fatalf("rollback sent reason %q", got.Reason)
	}

	// A server-side refusal surfaces its JSON error message.
	if err := os.WriteFile(specFile, []byte("broken spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runSpec([]string{"push", "-f", specFile, "-admin", srv.URL}, &out)
	if err == nil || !strings.Contains(err.Error(), "does not compile") {
		t.Fatalf("refused push error = %v", err)
	}

	// Unknown verbs and missing flags fail up front.
	if err := runSpec([]string{"bogus"}, &out); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if err := runSpec([]string{"push", "-admin", srv.URL}, &out); err == nil {
		t.Fatal("push without -f accepted")
	}
	if err := runSpec(nil, &out); err == nil {
		t.Fatal("bare spec accepted")
	}
}

// TestResolveRegistrySpec covers the -recheck registry-hash path:
// built-ins and files pass through, hashes materialize, junk errors.
func TestResolveRegistrySpec(t *testing.T) {
	dir := t.TempDir()
	reg, err := specreg.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := reg.Put("strict", rules.StrictSource)
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()

	for _, passthrough := range []string{"strict", "relaxed"} {
		got, cleanup, err := resolveRegistrySpec(dir, passthrough)
		if err != nil || got != passthrough {
			t.Fatalf("resolve(%q) = %q, %v", passthrough, got, err)
		}
		cleanup()
	}

	got, cleanup, err := resolveRegistrySpec(dir, hash[:12])
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	src, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(src) != rules.StrictSource {
		t.Fatalf("materialized spec differs from the registry source")
	}
	cleanup()
	if _, err := os.Stat(got); !os.IsNotExist(err) {
		t.Fatalf("cleanup left %s behind (%v)", got, err)
	}

	if _, _, err := resolveRegistrySpec(dir, "not-a-hash-or-file"); err == nil {
		t.Fatal("junk spec resolved")
	}
}

func TestMonitorctlVersionString(t *testing.T) {
	if v := versionString("monitorctl"); !strings.HasPrefix(v, "monitorctl ") {
		t.Fatalf("versionString = %q", v)
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cpsmon/internal/obs"
)

// adminFixture serves a small registry — a labelled counter, a gauge
// and a histogram — through the real admin handler.
func adminFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	c := reg.Counter("cpsmon_fleet_frames_ingested_total", "Frames accepted into session queues.", obs.Label{Name: "vehicle", Value: "veh-1"})
	c.Add(240)
	reg.GaugeFunc("cpsmon_fleet_sessions_active", "Sessions currently attached.", func() float64 { return 3 })
	h := reg.Histogram("cpsmon_fleet_ingest_batch_latency_seconds", "Queue-to-evaluation latency per batch.", obs.DefaultLatencyBuckets())
	h.Observe(0.002)
	h.Observe(0.004)
	srv := httptest.NewServer(obs.NewAdminHandler(reg, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunMetricsPrettyPrintsFamilies(t *testing.T) {
	srv := adminFixture(t)
	for _, target := range []string{
		srv.URL + "/metrics",                   // full URL
		strings.TrimPrefix(srv.URL, "http://"), // bare host:port, as passed to monitord -admin
	} {
		var sb strings.Builder
		if err := runMetrics(target, &sb); err != nil {
			t.Fatalf("runMetrics(%q): %v", target, err)
		}
		out := sb.String()
		for _, want := range []string{
			"cpsmon_fleet_frames_ingested_total (counter)",
			`{vehicle="veh-1"}`,
			"240",
			"cpsmon_fleet_sessions_active (gauge)",
			"cpsmon_fleet_ingest_batch_latency_seconds (histogram)",
			"_count",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("runMetrics(%q) output missing %q:\n%s", target, want, out)
			}
		}
		if strings.Contains(out, "_bucket") {
			t.Errorf("histogram buckets not elided:\n%s", out)
		}
	}
}

// TestBucketQuantileInterpolation pins the shared estimator on a
// hand-computable series: 10 observations spread uniformly across the
// (0.001, 0.005] bucket put the median at its midpoint.
func TestBucketQuantileInterpolation(t *testing.T) {
	h := histSeries{
		upper: []float64{0.001, 0.005, 0.01},
		cum:   []float64{0, 10, 10},
		count: 10,
	}
	if got := h.quantile(0.50); got != 0.003 {
		t.Errorf("p50 = %v, want 0.003 (midpoint of the only occupied bucket)", got)
	}
	if got := h.quantile(1.0); got != 0.005 {
		t.Errorf("p100 = %v, want the occupied bucket's upper bound", got)
	}
	// Rank past the last finite bucket clamps to its bound.
	h2 := histSeries{upper: []float64{0.001}, cum: []float64{3}, count: 10}
	if got := h2.quantile(0.99); got != 0.001 {
		t.Errorf("overflow quantile = %v, want clamp to 0.001", got)
	}
	if got := (histSeries{}).quantile(0.5); got == got { // NaN != NaN
		t.Errorf("empty series quantile = %v, want NaN", got)
	}
}

// TestRunMetricsQuantileLinesAndOrder pins the satellite behaviors:
// histogram families gain estimated p50/p95/p99 lines, and the output
// order is a pure function of the scraped state (families by name,
// series by name+labels).
func TestRunMetricsQuantileLinesAndOrder(t *testing.T) {
	srv := adminFixture(t)
	var sb strings.Builder
	if err := runMetrics(srv.URL+"/metrics", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p95=") || !strings.Contains(out, "p99=") {
		t.Errorf("no quantile line for the latency histogram:\n%s", out)
	}
	// The default buckets are powers of four from 10µs; the 2ms
	// observation interpolates to its bucket bound, 2.56ms.
	if !strings.Contains(out, "p50=2.56ms") {
		t.Errorf("p50 estimate not interpolated to the occupied bucket:\n%s", out)
	}
	// Families render sorted by name: the histogram family first.
	first := strings.Index(out, "cpsmon_fleet_frames_ingested_total (")
	second := strings.Index(out, "cpsmon_fleet_ingest_batch_latency_seconds (")
	third := strings.Index(out, "cpsmon_fleet_sessions_active (")
	if first < 0 || second < 0 || third < 0 || !(first < second && second < third) {
		t.Errorf("families not sorted by name (positions %d, %d, %d):\n%s", first, second, third, out)
	}
}

func TestRunMetricsRejectsBadTarget(t *testing.T) {
	srv := adminFixture(t)
	var sb strings.Builder
	if err := runMetrics(srv.URL+"/nope", &sb); err == nil {
		t.Error("no error for a 404 target")
	}
	if err := runMetrics("127.0.0.1:1", &sb); err == nil {
		t.Error("no error for a refused connection")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("refused-connection error %q does not say the endpoint is unreachable", err)
	}
	if sb.Len() != 0 {
		t.Errorf("failed scrapes still printed output:\n%s", sb.String())
	}
}

// TestRunMetricsRejectsEmptyScrape pins the unreachable-endpoint
// satellite from the other side: an HTTP server that answers 200 with
// no exposition at all (nothing listening that speaks Prometheus, a
// bare web server, a load balancer default page) must be an error,
// not a silent empty printout.
func TestRunMetricsRejectsEmptyScrape(t *testing.T) {
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	t.Cleanup(empty.Close)
	var sb strings.Builder
	err := runMetrics(empty.URL+"/metrics", &sb)
	if err == nil {
		t.Fatal("no error for a 200 response with no metrics")
	}
	if !strings.Contains(err.Error(), "no metrics") {
		t.Errorf("empty-scrape error %q does not explain the empty exposition", err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty scrape still printed output:\n%s", sb.String())
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cpsmon/internal/obs"
)

// adminFixture serves a small registry — a labelled counter, a gauge
// and a histogram — through the real admin handler.
func adminFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	c := reg.Counter("cpsmon_fleet_frames_ingested_total", "Frames accepted into session queues.", obs.Label{Name: "vehicle", Value: "veh-1"})
	c.Add(240)
	reg.GaugeFunc("cpsmon_fleet_sessions_active", "Sessions currently attached.", func() float64 { return 3 })
	h := reg.Histogram("cpsmon_fleet_ingest_batch_latency_seconds", "Queue-to-evaluation latency per batch.", obs.DefaultLatencyBuckets())
	h.Observe(0.002)
	h.Observe(0.004)
	srv := httptest.NewServer(obs.NewAdminHandler(reg, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestRunMetricsPrettyPrintsFamilies(t *testing.T) {
	srv := adminFixture(t)
	for _, target := range []string{
		srv.URL + "/metrics",                   // full URL
		strings.TrimPrefix(srv.URL, "http://"), // bare host:port, as passed to monitord -admin
	} {
		var sb strings.Builder
		if err := runMetrics(target, &sb); err != nil {
			t.Fatalf("runMetrics(%q): %v", target, err)
		}
		out := sb.String()
		for _, want := range []string{
			"cpsmon_fleet_frames_ingested_total (counter)",
			`{vehicle="veh-1"}`,
			"240",
			"cpsmon_fleet_sessions_active (gauge)",
			"cpsmon_fleet_ingest_batch_latency_seconds (histogram)",
			"_count",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("runMetrics(%q) output missing %q:\n%s", target, want, out)
			}
		}
		if strings.Contains(out, "_bucket") {
			t.Errorf("histogram buckets not elided:\n%s", out)
		}
	}
}

func TestRunMetricsRejectsBadTarget(t *testing.T) {
	srv := adminFixture(t)
	var sb strings.Builder
	if err := runMetrics(srv.URL+"/nope", &sb); err == nil {
		t.Error("no error for a 404 target")
	}
	if err := runMetrics("127.0.0.1:1", &sb); err == nil {
		t.Error("no error for a refused connection")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("refused-connection error %q does not say the endpoint is unreachable", err)
	}
	if sb.Len() != 0 {
		t.Errorf("failed scrapes still printed output:\n%s", sb.String())
	}
}

// TestRunMetricsRejectsEmptyScrape pins the unreachable-endpoint
// satellite from the other side: an HTTP server that answers 200 with
// no exposition at all (nothing listening that speaks Prometheus, a
// bare web server, a load balancer default page) must be an error,
// not a silent empty printout.
func TestRunMetricsRejectsEmptyScrape(t *testing.T) {
	empty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	t.Cleanup(empty.Close)
	var sb strings.Builder
	err := runMetrics(empty.URL+"/metrics", &sb)
	if err == nil {
		t.Fatal("no error for a 200 response with no metrics")
	}
	if !strings.Contains(err.Error(), "no metrics") {
		t.Errorf("empty-scrape error %q does not explain the empty exposition", err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty scrape still printed output:\n%s", sb.String())
	}
}

package main

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// histSeries is one histogram series reassembled from its scraped
// cumulative _bucket/_sum/_count samples: finite upper bounds
// ascending, the +Inf total carried by count.
type histSeries struct {
	labels string    // label signature without le, `{vehicle="x"}` or ""
	upper  []float64 // finite bucket upper bounds, ascending
	cum    []float64 // cumulative counts, parallel to upper
	count  float64   // total observations (the _count sample)
	sum    float64   // the _sum sample
}

// histogramSeries reassembles a scraped histogram family into one
// histSeries per label set, sorted by label signature so the output is
// deterministic. It is the shared parser behind -metrics quantile
// lines and the -top per-vehicle table.
func histogramSeries(f *promFamily) []histSeries {
	acc := make(map[string]*histSeries)
	get := func(sig string) *histSeries {
		h, ok := acc[sig]
		if !ok {
			h = &histSeries{labels: sig}
			acc[sig] = h
		}
		return h
	}
	for _, s := range f.samples {
		name, labels := splitSeries(s.series)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le := ""
			rest := labels[:0:0]
			for _, l := range labels {
				if strings.HasPrefix(l, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(l, `le="`), `"`)
				} else {
					rest = append(rest, l)
				}
			}
			if le == "+Inf" {
				continue // the _count sample carries the total
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			h := get(labelSignature(rest))
			h.upper = append(h.upper, ub)
			h.cum = append(h.cum, s.value)
		case strings.HasSuffix(name, "_sum"):
			get(labelSignature(labels)).sum = s.value
		case strings.HasSuffix(name, "_count"):
			get(labelSignature(labels)).count = s.value
		}
	}
	out := make([]histSeries, 0, len(acc))
	for _, h := range acc {
		sort.Sort(byUpper{h})
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// byUpper sorts a series' bucket pairs by upper bound.
type byUpper struct{ h *histSeries }

func (b byUpper) Len() int           { return len(b.h.upper) }
func (b byUpper) Less(i, j int) bool { return b.h.upper[i] < b.h.upper[j] }
func (b byUpper) Swap(i, j int) {
	b.h.upper[i], b.h.upper[j] = b.h.upper[j], b.h.upper[i]
	b.h.cum[i], b.h.cum[j] = b.h.cum[j], b.h.cum[i]
}

// quantile estimates the q-quantile (0..1) from the cumulative buckets
// the way PromQL's histogram_quantile does: find the bucket the target
// rank falls in and interpolate linearly inside it. Observations past
// the last finite bound clamp to that bound; an empty series is NaN.
func (h histSeries) quantile(q float64) float64 {
	if h.count == 0 || len(h.upper) == 0 {
		return math.NaN()
	}
	rank := q * h.count
	for i, c := range h.cum {
		if c >= rank {
			lower, prev := 0.0, 0.0
			if i > 0 {
				lower, prev = h.upper[i-1], h.cum[i-1]
			}
			if c == prev {
				return h.upper[i]
			}
			return lower + (h.upper[i]-lower)*(rank-prev)/(c-prev)
		}
	}
	return h.upper[len(h.upper)-1]
}

// splitSeries breaks a sample's series string into its metric name and
// raw label terms ("a=\"b\"" each). Label values in this codebase never
// contain commas, so the simple split suffices.
func splitSeries(series string) (name string, labels []string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil
	}
	inner := strings.TrimSuffix(series[i+1:], "}")
	if inner == "" {
		return series[:i], nil
	}
	return series[:i], strings.Split(inner, ",")
}

// labelSignature renders label terms back into a canonical signature.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + strings.Join(labels, ",") + "}"
}

// labelValue extracts one label's value from a signature, "" if absent.
func labelValue(sig, name string) string {
	for _, l := range strings.Split(strings.Trim(sig, "{}"), ",") {
		if strings.HasPrefix(l, name+`="`) {
			return strings.TrimSuffix(strings.TrimPrefix(l, name+`="`), `"`)
		}
	}
	return ""
}

// fmtLatency renders a latency in seconds at display precision; NaN
// (an empty histogram) prints as a dash.
func fmtLatency(sec float64) string {
	if math.IsNaN(sec) {
		return "-"
	}
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// fmtNanos renders a span duration in nanoseconds for display.
func fmtNanos(n int64) string { return fmtLatency(float64(n) / 1e9) }

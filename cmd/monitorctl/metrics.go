package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// promSample is one series of a scraped metric family.
type promSample struct {
	series string // full name, including any {labels} and _sum/_count suffix
	value  float64
}

// promFamily groups the samples of one metric under its HELP and TYPE
// annotations.
type promFamily struct {
	name    string
	kind    string
	help    string
	samples []promSample
}

// runMetrics scrapes a monitord admin endpoint and renders its metric
// families for humans: one block per family with its type and help
// text, one aligned line per series, sorted by name and label
// signature so repeated scrapes diff cleanly. Histogram bucket series
// are elided in favor of estimated p50/p95/p99 lines interpolated from
// the cumulative buckets (the same estimator -top uses), alongside the
// count and sum.
//
// target is the admin address as given to monitord -admin (host:port)
// or a full URL; a bare address scrapes http://<target>/metrics.
func runMetrics(target string, out io.Writer) error {
	fams, err := scrapeFamilies(metricsURL(target))
	if err != nil {
		return err
	}
	return printFamilies(out, fams)
}

// metricsURL resolves a -metrics/-top target into the scrape URL: a
// bare host:port becomes http://<target>/metrics.
func metricsURL(target string) string {
	url := target
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(strings.TrimPrefix(url, "http://"), "/") {
		url += "/metrics"
	}
	return url
}

// scrapeFamilies fetches and parses one exposition, rejecting targets
// that answer but expose nothing.
func scrapeFamilies(url string) ([]*promFamily, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("admin endpoint unreachable: %w (is monitord running with -admin, and is the address right?)", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	fams, err := parseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.samples)
	}
	if samples == 0 {
		return nil, fmt.Errorf("scrape %s: endpoint answered but exposed no metrics — not a monitord admin endpoint?", url)
	}
	return fams, nil
}

// parseExposition reads Prometheus text exposition into families,
// preserving encounter order. Histogram child series (_bucket, _sum,
// _count) are filed under their parent family.
func parseExposition(r io.Reader) ([]*promFamily, error) {
	var fams []*promFamily
	byName := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &promFamily{name: name}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			if name, help, ok := strings.Cut(rest, " "); ok {
				family(name).help = help
			} else {
				family(rest)
			}
			continue
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			if name, kind, ok := strings.Cut(rest, " "); ok {
				family(name).kind = kind
			}
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		series := strings.TrimSpace(line[:sp])
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// A histogram's children carry suffixed names; attribute them
		// to the parent announced by the TYPE line.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			parent := strings.TrimSuffix(name, suf)
			if parent != name {
				if f, ok := byName[parent]; ok && f.kind == "histogram" {
					name = parent
					break
				}
			}
		}
		f := family(name)
		f.samples = append(f.samples, promSample{series: series, value: v})
	}
	return fams, sc.Err()
}

// printFamilies renders the families as aligned blocks, sorted by
// family name with each family's series sorted by full series string
// (name plus label signature) — the order is a pure function of the
// scraped state, so two scrapes diff series-for-series.
func printFamilies(out io.Writer, fams []*promFamily) error {
	sorted := make([]*promFamily, len(fams))
	copy(sorted, fams)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	tw := tabwriter.NewWriter(out, 0, 4, 2, ' ', 0)
	first := true
	for _, f := range sorted {
		if len(f.samples) == 0 {
			continue
		}
		if !first {
			fmt.Fprintln(tw)
		}
		first = false
		kind := f.kind
		if kind == "" {
			kind = "untyped"
		}
		fmt.Fprintf(tw, "%s (%s)\t%s\n", f.name, kind, f.help)
		samples := make([]promSample, len(f.samples))
		copy(samples, f.samples)
		sort.Slice(samples, func(i, j int) bool { return samples[i].series < samples[j].series })
		for _, s := range samples {
			if f.kind == "histogram" && strings.Contains(s.series, "_bucket") {
				continue
			}
			fmt.Fprintf(tw, "  %s\t%s\n", s.series, strconv.FormatFloat(s.value, 'g', -1, 64))
		}
		if f.kind == "histogram" {
			// Estimated quantiles per label set, interpolated from the
			// cumulative buckets. Latency histograms render as durations,
			// anything else in the family's native unit.
			asLatency := strings.HasSuffix(f.name, "_seconds")
			for _, h := range histogramSeries(f) {
				q := func(p float64) string {
					v := h.quantile(p)
					if asLatency {
						return fmtLatency(v)
					}
					return strconv.FormatFloat(v, 'g', 4, 64)
				}
				fmt.Fprintf(tw, "  %s%s\tp50=%s p95=%s p99=%s\n", f.name, h.labels, q(0.50), q(0.95), q(0.99))
			}
		}
	}
	return tw.Flush()
}

package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: cpsmon
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig1SignalCodec-8   	34024694	        35.21 ns/op	       0 B/op	       0 allocs/op
BenchmarkMonitorOnline-8     	      22	  51085132 ns/op	   15769 frames/sec	      63 ns/frame	   38848 B/op	     402 allocs/op
BenchmarkSpecCompile         	    8342	    142035 ns/op	   98637 B/op	    1792 allocs/op
PASS
ok  	cpsmon	12.442s
--- BENCH: BenchmarkSomethingVerbose
    bench_test.go:42: note
`

func TestParse(t *testing.T) {
	recs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(recs), recs)
	}
	codec := recs[0]
	if codec.Name != "BenchmarkFig1SignalCodec" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", codec.Name)
	}
	if codec.Iterations != 34024694 || codec.NsPerOp != 35.21 || codec.AllocsPerOp != 0 || codec.BytesPerOp != 0 {
		t.Errorf("codec record = %+v", codec)
	}
	online := recs[1]
	if online.NsPerOp != 51085132 {
		t.Errorf("ns/op = %v, want 51085132", online.NsPerOp)
	}
	// Custom ReportMetric columns must not be mistaken for B/op.
	if online.BytesPerOp != 38848 || online.AllocsPerOp != 402 {
		t.Errorf("online record = %+v", online)
	}
	bare := recs[2]
	if bare.Name != "BenchmarkSpecCompile" || bare.AllocsPerOp != 1792 {
		t.Errorf("bare record = %+v", bare)
	}
}

func TestLabelTagsEveryRecordAndStaysOptional(t *testing.T) {
	recs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Unlabelled records must omit the field entirely, keeping old
	// snapshots byte-compatible.
	plain, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "label") {
		t.Errorf("unlabelled records leak a label field: %s", plain)
	}
	applyLabel(recs, "PR4")
	for _, r := range recs {
		if r.Label != "PR4" {
			t.Errorf("record %s label = %q, want PR4", r.Name, r.Label)
		}
	}
	tagged, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tagged), `"label": "PR4"`) && !strings.Contains(string(tagged), `"label":"PR4"`) {
		t.Errorf("labelled records missing the tag: %s", tagged)
	}
}

func TestParseEmpty(t *testing.T) {
	recs, err := parse(strings.NewReader("PASS\nok \tcpsmon\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("parsed %d records from benchmark-free output", len(recs))
	}
}

// Command benchjson converts `go test -bench -benchmem` text output
// into a JSON array of benchmark records, so benchmark history can be
// committed and diffed between performance PRs.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson > BENCH.json
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -label PR4 > BENCH_PR4.json
//
// Non-benchmark lines (package headers, PASS/ok trailers, metrics
// emitted via b.ReportMetric) are ignored. The -N GOMAXPROCS suffix is
// stripped from names so records stay comparable across machines.
// -label tags every record, so a snapshot says which PR produced it
// even after it is copied or concatenated with another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Label       string  `json:"label,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// applyLabel stamps every record with the snapshot's tag.
func applyLabel(recs []Record, label string) {
	for i := range recs {
		recs[i].Label = label
	}
}

// procSuffix matches the trailing -N GOMAXPROCS marker on a benchmark
// name.
var procSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark records from go test output.
func parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		rec := Record{
			Name:       procSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			NsPerOp:    ns,
		}
		// With -benchmem the tail is: <B> B/op <allocs> allocs/op,
		// possibly preceded by custom ReportMetric columns.
		for i := 4; i+1 < len(fields); i++ {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			}
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

func main() {
	label := flag.String("label", "", "tag every record with this snapshot label (e.g. the PR name)")
	flag.Parse()
	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	applyLabel(recs, *label)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command faultinject runs the full robustness-testing campaign and
// regenerates the paper's Table I: random value injection, Ballista
// exceptional values and bit flips against each FSRACC input and
// against multi-signal groups, each trace checked by the bolt-on
// monitor.
//
// Usage:
//
//	faultinject                # full campaign, paper protocol
//	faultinject -seed 7 -compare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cpsmon/internal/campaign"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("faultinject", flag.ContinueOnError)
	var (
		seed     = fs.Int64("seed", 42, "campaign seed")
		compare  = fs.Bool("compare", false, "compare the reproduced table against the published Table I")
		detail   = fs.Bool("detail", false, "print per-rule violation counts and triage classes under the table")
		coverage = fs.Bool("coverage", false, "mark vacuously satisfied cells (rule never exercised) with a lower-case s")
		jsonOut  = fs.Bool("json", false, "emit the table as JSON instead of text")
		quiet    = fs.Bool("q", false, "suppress per-test progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := campaign.DefaultTableIConfig(*seed)
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	table, err := campaign.RunTableI(cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(table)
	}
	render := table.Render
	if *detail {
		render = table.RenderDetail
	}
	if *coverage {
		render = table.RenderCoverage
	}
	if err := render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nrules violated anywhere: %d of %d (paper: 6 of 7, all except Rule #0)\n",
		table.RulesViolatedAnywhere(), len(table.RuleNames))
	if *compare {
		fmt.Println("\nCOMPARISON AGAINST PUBLISHED TABLE I")
		cmp := campaign.Compare(table, campaign.PaperTableI())
		if err := campaign.RenderComparison(os.Stdout, cmp); err != nil {
			return err
		}
	}
	return nil
}

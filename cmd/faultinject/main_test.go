package main

import "testing"

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-seed", "banana"}); err == nil {
		t.Error("bad flag accepted")
	}
}

package main

import "testing"

func TestRunSingleCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated drive cycle")
	}
	if err := run([]string{"-cycles", "1", "-seed", "2024"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-cycles", "banana"}); err == nil {
		t.Error("bad flag accepted")
	}
}

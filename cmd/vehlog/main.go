// Command vehlog reproduces the paper's Section IV.A: it generates
// prototype-vehicle drive-cycle logs (hills, cut-ins, stop-and-go,
// sensor noise, frame jitter, no injection type checking) and analyses
// them with the strict rules, the triage pass, and the relaxed rules.
//
// Usage:
//
//	vehlog                     # 12 cycles ≈ 2 hours of driving
//	vehlog -cycles 3 -seed 99
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cpsmon/internal/campaign"
	"cpsmon/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vehlog:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vehlog", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 2024, "drive-cycle seed")
		cycles  = fs.Int("cycles", 12, "number of 10-minute drive cycles")
		jsonOut = fs.Bool("json", false, "emit the analysis as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a, err := campaign.RunVehicleLogs(*seed, *cycles)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	if err := a.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nPAPER EXPECTATION: Rules #0, #1, #5, #6 not violated; Rules #2, #3, #4")
	fmt.Println("violated but determined to be reasonable violations (overly strict rules).")
	ok := true
	for _, name := range []string{"Rule0", "Rule1", "Rule5", "Rule6"} {
		if r, found := a.Rule(name); found && r.StrictVerdict != core.Satisfied {
			ok = false
			fmt.Printf("MISMATCH: %s violated on the vehicle logs\n", name)
		}
	}
	for _, name := range []string{"Rule2", "Rule3", "Rule4"} {
		r, found := a.Rule(name)
		if !found {
			continue
		}
		if r.StrictVerdict != core.Violated {
			fmt.Printf("NOTE: %s was not violated in this sample of driving\n", name)
		}
		if r.Real > 0 {
			ok = false
			fmt.Printf("MISMATCH: %s has %d violations triage could not explain\n", name, r.Real)
		}
	}
	if ok {
		fmt.Println("reproduction matches the paper's real-vehicle findings.")
	}
	return nil
}

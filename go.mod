module cpsmon

go 1.23

// Package cpsmon is a reproduction of "Monitor Based Oracles for
// Cyber-Physical System Testing: Practical Experience Report" (Kane,
// Fuhrman, Koopman — DSN 2014): a bolt-on, passive runtime monitor used
// as a partial test oracle over a vehicle's CAN broadcast traffic, plus
// everything needed to evaluate it — a simulated HIL bench, a
// prototype-quality FSRACC feature under test, robustness-testing fault
// injectors, and the campaign harnesses that regenerate the paper's
// Table I, its real-vehicle log analysis, and its discussion-section
// findings as ablation experiments.
//
// See README.md for the layout, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The root package
// holds no code; the library lives under internal/ and the executables
// under cmd/.
package cpsmon

// Multirate: the Section V.C.1 sampling trap, reproduced end to end.
//
// The FSRACC output frame is reconfigured to broadcast four times
// slower than the monitor's evaluation step, as in the paper's system.
// A fault makes the feature ramp its torque for much longer than the
// Rule #4 window while the vehicle is above its set speed. With naive
// per-step differences the held torque "appears to be constant for
// three samples out of four" and the violation is missed entirely;
// with update-aware differences it is caught.
//
// Run with:
//
//	go run ./examples/multirate
package main

import (
	"fmt"
	"log"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The slow-output network variant: RequestedTorque/RequestedDecel
	// broadcast every 40 ms while the monitor steps at 10 ms.
	db := sigdb.VehicleSlowOutputs()
	cfg := scenario.Follow(9, time.Minute)
	cfg.DB = db
	bench, err := hil.New(cfg)
	if err != nil {
		return err
	}
	err = bench.Run(time.Minute, func(now time.Duration, b *hil.Bench) error {
		if now == 20*time.Second {
			// The feature believes it is crawling and ramps torque
			// while the genuine speed climbs past the set speed.
			return b.SetInjection(sigdb.SigVelocity, 5)
		}
		return nil
	})
	if err != nil {
		return err
	}
	tr, err := trace.FromCANLog(bench.Log(), db)
	if err != nil {
		return err
	}

	rs, err := rules.Strict()
	if err != nil {
		return err
	}
	for _, mode := range []struct {
		name string
		mode speclang.DeltaMode
	}{
		{"naive per-step differences", speclang.DeltaNaive},
		{"update-aware differences", speclang.DeltaUpdateAware},
	} {
		mon, err := core.New(core.Config{Rules: rs, DeltaMode: mode.mode})
		if err != nil {
			return err
		}
		rep, err := mon.CheckTrace(tr)
		if err != nil {
			return err
		}
		rr, _ := rep.Rule("Rule4")
		steps := 0
		for _, v := range rr.Result.Violations {
			steps += v.Steps()
		}
		fmt.Printf("%-28s Rule #4 = %s (%d violating steps)\n", mode.name+":", rr.Verdict, steps)
	}
	fmt.Println("\nThe held value of a slow frame reads as constant between updates, so a")
	fmt.Println("naive difference sees 'not increasing' three steps out of four — exactly")
	fmt.Println("the false negative the paper warns a monitoring architecture must handle")
	fmt.Println("with a uniformly applied multi-rate mechanism.")
	return nil
}

// Online: the runtime-monitoring path the paper leaves as future work
// ("there is no fundamental reason the monitoring could not be done at
// runtime").
//
// The example runs the follow scenario with a velocity fault and feeds
// the captured frames to the streaming monitor one at a time, printing
// violation events at the moment they become decidable — a bounded
// number of frames after the violating behaviour, set by each rule's
// temporal horizon (400 ms for Rule #4, five seconds for Rule #1's
// recovery deadline, zero for the propositional rules).
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Capture a scenario with a corrupted Velocity input: the feature
	// believes it is crawling and pushes the real vehicle past its set
	// speed toward the lead car.
	const duration = 90 * time.Second
	bench, err := hil.New(scenario.Follow(11, duration))
	if err != nil {
		return err
	}
	err = bench.Run(duration, func(now time.Duration, b *hil.Bench) error {
		switch now {
		case 30 * time.Second:
			fmt.Println("--- injecting Velocity=5 at 30s ---")
			return b.SetInjection(sigdb.SigVelocity, 5)
		case 50 * time.Second:
			fmt.Println("--- clearing injection at 50s ---")
			b.ClearInjection(sigdb.SigVelocity)
		}
		return nil
	})
	if err != nil {
		return err
	}

	mon, err := rules.NewStrictMonitor()
	if err != nil {
		return err
	}
	om, err := mon.Online(sigdb.Vehicle())
	if err != nil {
		return err
	}

	// Replay the capture frame by frame, as a listener on the live bus
	// would receive it.
	events := 0
	for _, f := range bench.Log().Frames() {
		evs, err := om.PushFrame(f)
		if err != nil {
			return err
		}
		for _, e := range evs {
			events++
			switch e.Kind {
			case speclang.ViolationBegin:
				fmt.Printf("at bus time %-8v %s violation begins (start %v, decision latency %v)\n",
					f.Time, e.Rule, e.Time, f.Time-e.Time)
			case speclang.ViolationEnd:
				fmt.Printf("at bus time %-8v %s violation ends: %v for %v [%s]\n",
					f.Time, e.Rule, e.Violation.Start, e.Violation.Duration(), e.Class)
			}
		}
	}
	evs, err := om.Close()
	if err != nil {
		return err
	}
	for _, e := range evs {
		if e.Kind == speclang.ViolationEnd {
			events++
			fmt.Printf("at end of trace   %s violation ends: %v for %v [%s]\n",
				e.Rule, e.Violation.Start, e.Violation.Duration(), e.Class)
		}
	}
	if events == 0 {
		fmt.Println("no violations (unexpected for this scenario)")
	}
	return nil
}

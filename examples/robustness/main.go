// Robustness: Section IV of the paper in miniature.
//
// The example runs the follow scenario on the simulated HIL bench three
// times — once clean, once with a Ballista exceptional value injected
// into TargetRange (the paper's flagship failure: the feature commands
// acceleration into, and through, the target vehicle), and once with a
// low Velocity injection — and checks each captured bus log with the
// seven safety rules.
//
// Run with:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"time"

	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type injection struct {
	name   string
	signal string
	value  float64
}

func run() error {
	mon, err := rules.NewStrictMonitor()
	if err != nil {
		return err
	}
	cases := []injection{
		{name: "no injection (baseline)"},
		{name: "Ballista TargetRange = 4294967296.000001", signal: sigdb.SigTargetRange, value: 4294967296.000001},
		{name: "Random Velocity = 5 m/s (feature believes it is slow)", signal: sigdb.SigVelocity, value: 5},
	}
	const duration = 80 * time.Second
	for _, c := range cases {
		bench, err := hil.New(scenario.Follow(11, duration))
		if err != nil {
			return err
		}
		onTick := func(now time.Duration, b *hil.Bench) error {
			if c.signal == "" {
				return nil
			}
			switch now {
			case 30 * time.Second:
				return b.SetInjection(c.signal, c.value)
			case 50 * time.Second:
				b.ClearInjection(c.signal)
			}
			return nil
		}
		if err := bench.Run(duration, onTick); err != nil {
			return err
		}
		rep, err := mon.CheckLog(bench.Log(), sigdb.Vehicle())
		if err != nil {
			return err
		}
		fmt.Printf("%s\n  rules: ", c.name)
		for _, rr := range rep.Rules {
			fmt.Printf("%s=%s ", rr.Name(), rr.Verdict)
		}
		fmt.Println()
		for _, rr := range rep.Rules {
			for i, v := range rr.Result.Violations {
				if i >= 2 {
					fmt.Printf("  %s: ... and %d more\n", rr.Name(), len(rr.Result.Violations)-2)
					break
				}
				fmt.Printf("  %s: [%s] at %v for %v: %s\n",
					rr.Name(), rr.Classes[i], v.Start, v.Duration(), v.Msg)
			}
		}
		if rep.AnyReal() {
			fmt.Println("  oracle: FAILED")
		} else {
			fmt.Println("  oracle: passed")
		}
		fmt.Println()
	}
	return nil
}

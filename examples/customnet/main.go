// Customnet: the generalizability claim of the paper's Section V.D,
// demonstrated end to end.
//
// "If a system is distributed, then some amount of useful state will be
// observable as the distributed nodes must communicate their state to
// each other." Here the system is not a car at all: a pressure vessel
// whose controller node broadcasts tank pressure, heater duty and
// relief-valve state on a small internal network. We describe that
// network in the textual database format, write two safety rules
// against it, simulate a sticky relief valve, and let the same bolt-on
// monitor that checked the FSRACC catch the hazard — no code specific
// to the new system anywhere in the monitor.
//
// Run with:
//
//	go run ./examples/customnet
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"cpsmon/internal/can"
	"cpsmon/internal/core"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/speclang"
)

// The plant's network, as its integrator would describe it.
const networkDB = `
# pressure vessel internal network
frame 0x10 TankState period=10ms
    signal Pressure float bits=0:32 unit="bar" comment="vessel pressure"
    signal Temp float bits=32:32 unit="C" comment="vessel temperature"
frame 0x11 Actuators period=10ms
    signal HeaterDuty float bits=0:32 unit="%" comment="heater PWM duty"
    signal ReliefOpen bool bits=32:1 comment="relief valve commanded open"
`

// Expert-elicited safety rules, exactly the paper's method: written
// from the observable signals and domain common sense, without access
// to the controller's internals.
const safetyRules = `
// Over-pressure must open the relief valve within half a second.
monitor ReliefResponse "relief valve must react to over-pressure" {
    initial state Normal {
        when Pressure > 8.0 => High
    }
    state High {
        when Pressure <= 8.0 || ReliefOpen => Normal
        after 500ms => violate "relief valve not opened within 500ms of over-pressure"
    }
}

// The heater must not keep pushing while pressure is critical.
spec HeaterCutoff "no heating at critical pressure" {
    severity HeaterDuty
    assert Pressure > 9.0 -> HeaterDuty <= 5.0
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := sigdb.ReadFormat(strings.NewReader(networkDB))
	if err != nil {
		return err
	}
	file, err := speclang.Parse(safetyRules)
	if err != nil {
		return err
	}
	rs, err := speclang.Compile(file, db.SignalNames())
	if err != nil {
		return err
	}
	mon, err := core.New(core.Config{Rules: rs})
	if err != nil {
		return err
	}

	// Simulate the vessel with a sticky relief valve: pressure rises
	// under heating, crosses the limit, and the valve opens two full
	// seconds late while the naive controller keeps heating.
	log := simulateVessel(db)
	fmt.Printf("captured %d frames from the vessel network\n\n", log.Len())

	rep, err := mon.CheckLog(log, db)
	if err != nil {
		return err
	}
	for _, rr := range rep.Rules {
		fmt.Printf("%-16s %s\n", rr.Name(), rr.Verdict)
		for i, v := range rr.Result.Violations {
			fmt.Printf("    [%s] at %v for %v: %s\n", rr.Classes[i], v.Start, v.Duration(), v.Msg)
		}
	}
	fmt.Println("\nThe same monitor, rules in the same language, zero vehicle code:")
	fmt.Println("the approach transfers to any CPS whose nodes broadcast their state.")
	return nil
}

// simulateVessel produces the bus capture of one over-pressure episode.
func simulateVessel(db *sigdb.DB) *can.Log {
	sched, err := can.NewTxSchedule(db, 10*time.Millisecond, 0, nil)
	if err != nil {
		panic(err)
	}
	bus := can.NewBus(db, sched)
	pressure, temp := 5.0, 80.0
	reliefOpen := false
	for tick := 0; tick < 3000; tick++ {
		t := time.Duration(tick) * 10 * time.Millisecond
		// A naive bang-bang heater that only cuts off at 9.5 bar.
		duty := 60.0
		if pressure > 9.5 {
			duty = 0
		}
		// The sticky relief valve: commanded open only 2 s after the
		// 8 bar threshold (the fault the monitor must catch).
		if pressure > 8.0 && t > 14*time.Second {
			reliefOpen = true
		}
		if pressure < 6.0 {
			reliefOpen = false
		}
		// Plant: heating raises pressure, the open valve dumps it.
		pressure += 0.003 * duty / 60
		if reliefOpen {
			pressure -= 0.01
		}
		temp = 80 + 8*(pressure-5)

		_ = bus.Set("Pressure", pressure)
		_ = bus.Set("Temp", temp)
		_ = bus.Set("HeaterDuty", duty)
		_ = bus.Set("ReliefOpen", boolToF(reliefOpen))
		if err := bus.Step(t); err != nil {
			panic(err)
		}
	}
	return bus.Log()
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

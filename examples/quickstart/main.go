// Quickstart: the bolt-on monitor pipeline in miniature.
//
// It builds a small recorded trace by hand (as if decoded from a bus
// capture), writes one safety rule in the specification language,
// compiles it, and checks the trace — printing the verdict and each
// violation the way a test oracle would.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/speclang"
	"cpsmon/internal/trace"
)

const spec = `
// A requested deceleration must actually decelerate: the paper's
// Rule #5 in one line.
spec DecelIsNegative "BrakeRequested implies RequestedDecel <= 0" {
    severity RequestedDecel
    assert BrakeRequested -> RequestedDecel <= 0.0
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A recorded trace: 10 ms samples of two signals. In the full
	// system this comes from trace.FromCANLog over a bus capture.
	tr := trace.New()
	brake := tr.Ensure("BrakeRequested")
	decel := tr.Ensure("RequestedDecel")
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		braking, d := 0.0, 0.0
		switch {
		case i >= 20 && i < 60: // a normal braking episode
			braking, d = 1, -1.5
		case i == 60: // ...ending with a one-cycle positive overshoot
			braking, d = 1, +0.12
		}
		if err := brake.Append(at, braking); err != nil {
			return err
		}
		if err := decel.Append(at, d); err != nil {
			return err
		}
	}

	// 2. Parse and compile the rule against the trace's signal universe.
	file, err := speclang.Parse(spec)
	if err != nil {
		return err
	}
	rules, err := speclang.Compile(file, tr.Names())
	if err != nil {
		return err
	}

	// 3. Build the monitor. The triage thresholds classify the
	// single-cycle overshoot as transient rather than a real problem.
	mon, err := core.New(core.Config{
		Rules:  rules,
		Period: 10 * time.Millisecond,
		Triage: map[string]core.Triage{
			"DecelIsNegative": {TransientMax: 25 * time.Millisecond},
		},
	})
	if err != nil {
		return err
	}

	// 4. Check the trace and report.
	rep, err := mon.CheckTrace(tr)
	if err != nil {
		return err
	}
	for _, rr := range rep.Rules {
		fmt.Printf("%s: %s\n", rr.Name(), rr.Verdict)
		for i, v := range rr.Result.Violations {
			fmt.Printf("  violation at %v for %v, peak %.2f m/s^2, class %s\n",
				v.Start, v.Duration(), v.Peak, rr.Classes[i])
		}
	}
	if rep.AnyReal() {
		fmt.Println("oracle verdict: test FAILED")
	} else {
		fmt.Println("oracle verdict: violation recorded but triaged transient (latent-bug clue, not a test failure)")
	}
	return nil
}

// Cut-in: the Section V.A intent-approximation story.
//
// A car cuts in close while the ego vehicle is accelerating back to its
// set speed. The strict Rule #2 flags the torque ramp that straddles
// the acquisition ("small headway gaps and acceleration that can occur
// during overtaking or a vehicle cutting in"); triage recognizes the
// violations as transient, and the relaxed rule — with its acquisition
// warm-up — does not flag them at all.
//
// Run with:
//
//	go run ./examples/cutin
package main

import (
	"fmt"
	"log"
	"time"

	"cpsmon/internal/core"
	"cpsmon/internal/hil"
	"cpsmon/internal/rules"
	"cpsmon/internal/scenario"
	"cpsmon/internal/sigdb"
	"cpsmon/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bench, err := hil.New(scenario.CutIn(5))
	if err != nil {
		return err
	}
	const duration = 3 * time.Minute
	if err := bench.Run(duration, nil); err != nil {
		return err
	}
	tr, err := trace.FromCANLog(bench.Log(), sigdb.Vehicle())
	if err != nil {
		return err
	}

	strict, err := rules.NewStrictMonitor()
	if err != nil {
		return err
	}
	relaxed, err := rules.NewRelaxedMonitor()
	if err != nil {
		return err
	}

	srep, err := strict.CheckTrace(tr)
	if err != nil {
		return err
	}
	rrep, err := relaxed.CheckTrace(tr)
	if err != nil {
		return err
	}

	s, _ := srep.Rule("Rule2")
	r, _ := rrep.Rule("Rule2")
	fmt.Printf("cut-in scenario, %v of driving\n\n", duration)
	fmt.Printf("strict Rule #2:  %s with %d violations (%d real, %d transient, %d negligible)\n",
		s.Verdict, len(s.Result.Violations),
		s.Count(core.ClassReal), s.Count(core.ClassTransient), s.Count(core.ClassNegligible))
	for i, v := range s.Result.Violations {
		fmt.Printf("  [%s] at %v for %v, peak delta %.2f N·m/cycle\n",
			s.Classes[i], v.Start, v.Duration(), v.Peak)
	}
	fmt.Printf("\nrelaxed Rule #2: %s (acquisition warm-up + amplitude tolerance)\n", r.Verdict)

	if s.Verdict == core.Violated && !s.RealViolations() && r.Verdict == core.Satisfied {
		fmt.Println("\nThis is the paper's triage loop: adopt strict expert rules, inspect")
		fmt.Println("the violations, recognize the overly-strict ones, and relax the rule.")
	}
	return nil
}
